package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// degradedByCell walks a trial's span forest and returns the degradation
// cause for every cell that consumed a degraded CASA allocation, keyed by
// cell index (the same walk cmd/experiments uses to fill the run report).
func degradedByCell(roots []*obs.Span) map[int]string {
	out := map[int]string{}
	var walk func(sp *obs.Span, cell int)
	walk = func(sp *obs.Span, cell int) {
		if sp.Name == "cell" {
			if idx, ok := sp.Attrs["index"].(int); ok {
				cell = idx
			}
		}
		if reason, ok := sp.Attrs["degraded"]; ok && cell >= 0 {
			if _, dup := out[cell]; !dup {
				out[cell] = fmt.Sprint(reason)
			}
		}
		for _, c := range sp.Children {
			walk(c, cell)
		}
	}
	for _, r := range roots {
		walk(r, -1)
	}
	return out
}

// TestChaosFig4 drives the full fig4 grid under randomized (but seeded)
// fault plans and checks the robustness contract end to end:
//
//   - the grid always completes — a trial ends in rows, rows+GridError,
//     or rows+degradations, never a hang or an unrecovered panic;
//   - every cell a fault touched is accounted for: failed cells appear in
//     the *parallel.GridError with a cause, degraded cells carry their
//     cause on the span tree the run report is built from;
//   - cells no fault touched produce rows byte-identical to a fault-free
//     baseline, regardless of what happened to their neighbors.
func TestChaosFig4(t *testing.T) {
	cfg := DefaultFig4()

	fault.Set(nil)
	base, err := Fig4(context.Background(), NewSuite().SetWorkers(1), cfg)
	if err != nil {
		t.Fatalf("fault-free baseline: %v", err)
	}

	trials := 6
	if raceEnabled || testing.Short() {
		trials = 2
	}
	points := []string{fault.SolverDeadline, fault.StreamRead, fault.MemoMiss, fault.CellPanic}
	rng := rand.New(rand.NewSource(0xCA5A))

	for trial := 0; trial < trials; trial++ {
		// Random plan: each point independently gets 1-2 scheduled hits
		// with probability 1/2; at least one point is always armed. Serial
		// workers make the per-point hit sequence — and therefore the set
		// of cells each clause lands on — deterministic per seed.
		plan := fault.NewPlan()
		armed := false
		for _, pt := range points {
			if rng.Intn(2) == 0 {
				continue
			}
			armed = true
			for n := 1 + rng.Intn(2); n > 0; n-- {
				plan.On(pt, 1+rng.Int63n(6))
			}
		}
		if !armed {
			plan.On(points[rng.Intn(len(points))], 1)
		}

		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			fault.Set(plan)
			defer fault.Set(nil)

			tr := obs.NewTracer()
			ctx := obs.WithTracer(context.Background(), tr)
			rows, err := Fig4(ctx, NewSuite().SetWorkers(1), cfg)

			failed := map[int]error{}
			if err != nil {
				var ge *parallel.GridError
				if !errors.As(err, &ge) {
					t.Fatalf("plan %v: non-grid error: %v", plan, err)
				}
				if len(rows) != len(cfg.SPMSizes) {
					t.Fatalf("plan %v: MapAll returned %d slots, want %d", plan, len(rows), len(cfg.SPMSizes))
				}
				for _, ce := range ge.Failed {
					if ce.Err == nil || ce.Err.Error() == "" {
						t.Errorf("plan %v: failed cell %d has no cause", plan, ce.Index)
					}
					failed[ce.Index] = ce.Err
				}
				if len(ge.Skipped) != 0 {
					t.Errorf("plan %v: MapAll skipped cells %v, want none", plan, ge.Skipped)
				}
			}
			degraded := degradedByCell(tr.Roots())
			for i, reason := range degraded {
				if reason == "" {
					t.Errorf("plan %v: degraded cell %d has no cause", plan, i)
				}
			}

			// Fired faults must be visible in the outcome: an aborted solve
			// degrades its cell, injected panics and stream errors fail
			// theirs with an attributable cause. (Forced memo misses only
			// recompute, so they leave no trace beyond counters.)
			fired := plan.Fired()
			if fired[fault.SolverDeadline] > 0 && len(degraded) == 0 {
				t.Errorf("plan %v: solver-deadline fired %d times but no cell is degraded",
					plan, fired[fault.SolverDeadline])
			}
			for _, want := range []struct {
				point string
				check func(error) bool
			}{
				{fault.StreamRead, func(e error) bool {
					var ie *fault.InjectedError
					return errors.As(e, &ie) && ie.Point == fault.StreamRead
				}},
				{fault.CellPanic, func(e error) bool {
					var pe *parallel.PanicError
					return errors.As(e, &pe)
				}},
			} {
				if fired[want.point] == 0 {
					continue
				}
				found := false
				for _, e := range failed {
					if want.check(e) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("plan %v: %s fired %d times but no failed cell carries it (failed: %v)",
						plan, want.point, fired[want.point], failed)
				}
			}

			// Untouched cells are bit-identical to the fault-free baseline.
			for i := range base {
				if _, isFailed := failed[i]; isFailed {
					continue
				}
				if _, isDegraded := degraded[i]; isDegraded {
					continue
				}
				if rows[i] != base[i] {
					t.Errorf("plan %v: non-faulted cell %d diverged:\n got %+v\nwant %+v",
						plan, i, rows[i], base[i])
				}
			}
		})
	}
}

// TestChaosEnvSpec closes the CASA_FAULTS loop: the exact spec string the
// README documents parses into a plan whose injected failure surfaces as
// a failed fig4 cell with an attributable cause.
func TestChaosEnvSpec(t *testing.T) {
	plan, err := fault.Parse("cell-panic:2")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	fault.Set(plan)
	defer fault.Set(nil)

	rows, err := Fig4(context.Background(), NewSuite().SetWorkers(1), DefaultFig4())
	var ge *parallel.GridError
	if !errors.As(err, &ge) {
		t.Fatalf("Fig4 under cell-panic:2 returned %v, want *parallel.GridError", err)
	}
	// Cells evaluate largest scratchpad first (warmplan.go), so the 2nd
	// serial hit lands on cell 2 (512 B) of the natural-order grid.
	if len(ge.Failed) != 1 || ge.Failed[0].Index != 2 {
		t.Fatalf("failed cells = %+v, want exactly cell 2 (2nd hit, largest-first order)", ge.Failed)
	}
	var pe *parallel.PanicError
	if !errors.As(ge.Failed[0].Err, &pe) {
		t.Fatalf("cell 2 cause = %v, want *parallel.PanicError", ge.Failed[0].Err)
	}
	if len(rows) != 4 || rows[0].SPMSize == 0 || rows[1].SPMSize == 0 || rows[3].SPMSize == 0 {
		t.Errorf("surviving cells missing from partial results: %+v", rows)
	}
	if got := plan.Fired()[fault.CellPanic]; got != 1 {
		t.Errorf("Fired[cell-panic] = %d, want 1", got)
	}
}
