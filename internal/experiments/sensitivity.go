package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cache"
)

// SensitivityRow is one hierarchy variant's outcome: CASA's energy saving
// against the cache-only baseline and against Steinke's allocator on the
// same hierarchy.
type SensitivityRow struct {
	// Label names the variant (e.g. "2-way lru", "32B lines").
	Label string
	// Cache is the variant's cache configuration.
	Cache CacheSpec
	// Energies in µJ.
	BaseMicroJ    float64
	CASAMicroJ    float64
	SteinkeMicroJ float64
	// Savings in percent.
	CASAvsBasePct    float64
	CASAvsSteinkePct float64
}

// SensitivityConfig sweeps CASA across cache organizations. The paper's
// formulation never assumes a direct-mapped cache — the conflict graph is
// defined for any replacement policy (§3.3) — so the allocator should keep
// winning as associativity, policy and line size change. This is the
// "generic algorithm" claim (§4) made measurable.
type SensitivityConfig struct {
	Workload string
	SPMSize  int
	Variants []CacheSpec
	Labels   []string
}

// DefaultSensitivity sweeps g721 (1 kB cache budget, 256 B scratchpad)
// across associativities, replacement policies and line sizes.
func DefaultSensitivity() SensitivityConfig {
	mk := func(size, line, assoc int, pol cache.Policy) CacheSpec {
		return CacheSpec{Size: size, Line: line, Assoc: assoc, Policy: pol}
	}
	return SensitivityConfig{
		Workload: "g721",
		SPMSize:  256,
		Variants: []CacheSpec{
			mk(1024, 16, 1, cache.LRU),
			mk(1024, 16, 2, cache.LRU),
			mk(1024, 16, 4, cache.LRU),
			mk(1024, 16, 2, cache.FIFO),
			mk(1024, 16, 2, cache.Random),
			mk(1024, 8, 1, cache.LRU),
			mk(1024, 32, 1, cache.LRU),
		},
		Labels: []string{
			"direct-mapped",
			"2-way LRU",
			"4-way LRU",
			"2-way FIFO",
			"2-way random",
			"8B lines",
			"32B lines",
		},
	}
}

// Sensitivity runs the sweep in natural cell order (every variant after
// the first finds solved same-partition donors, so the sweep warms up
// front to back).
func Sensitivity(ctx context.Context, s *Suite, cfg SensitivityConfig) ([]SensitivityRow, error) {
	order := make([]int, len(cfg.Variants))
	for i := range order {
		order[i] = i
	}
	return sensitivityOrdered(ctx, s, cfg, order)
}

// sensitivityOrdered is Sensitivity with an explicit cell evaluation
// order; the order affects only solve times and warm-transfer counters,
// never the rows (the property tests permute it to prove exactly that).
func sensitivityOrdered(ctx context.Context, s *Suite, cfg SensitivityConfig, order []int) ([]SensitivityRow, error) {
	if len(cfg.Variants) != len(cfg.Labels) {
		return nil, fmt.Errorf("experiments: %d variants, %d labels", len(cfg.Variants), len(cfg.Labels))
	}
	return runCellsOrdered(ctx, s, order, func(ctx context.Context, i int) (SensitivityRow, error) {
		spec := cfg.Variants[i]
		p, err := s.Pipeline(ctx, cfg.Workload, spec, cfg.SPMSize)
		if err != nil {
			return SensitivityRow{}, err
		}
		base, err := p.RunCacheOnly(ctx)
		if err != nil {
			return SensitivityRow{}, err
		}
		casa, err := p.RunCASA(ctx)
		if err != nil {
			return SensitivityRow{}, err
		}
		st, err := p.RunSteinke(ctx)
		if err != nil {
			return SensitivityRow{}, err
		}
		return SensitivityRow{
			Label:            cfg.Labels[i],
			Cache:            spec,
			BaseMicroJ:       base.EnergyMicroJ,
			CASAMicroJ:       casa.EnergyMicroJ,
			SteinkeMicroJ:    st.EnergyMicroJ,
			CASAvsBasePct:    improvement(casa.EnergyMicroJ, base.EnergyMicroJ),
			CASAvsSteinkePct: improvement(casa.EnergyMicroJ, st.EnergyMicroJ),
		}, nil
	})
}

// WriteSensitivity renders the sweep as a text table.
func WriteSensitivity(w io.Writer, cfg SensitivityConfig, rows []SensitivityRow) {
	fmt.Fprintf(w, "Hierarchy sensitivity: %s, %dB cache budget, %dB scratchpad\n",
		cfg.Workload, rows[0].Cache.Size, cfg.SPMSize)
	fmt.Fprintf(w, "%-16s %12s %12s %14s %12s %14s\n",
		"variant", "base(µJ)", "CASA(µJ)", "Steinke(µJ)", "vs base(%)", "vs Steinke(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12.2f %12.2f %14.2f %12.1f %14.1f\n",
			r.Label, r.BaseMicroJ, r.CASAMicroJ, r.SteinkeMicroJ,
			r.CASAvsBasePct, r.CASAvsSteinkePct)
	}
}
