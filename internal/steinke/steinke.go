// Package steinke implements the baseline allocator the paper compares
// against: Steinke et al., "Assigning Program and Data Objects to
// Scratchpad for Energy Reduction" (DATE 2002) [13], restricted to program
// objects as in the paper's evaluation.
//
// The algorithm assumes a cache-less hierarchy (scratchpad + main memory
// only). Each memory object's profit is proportional to its execution
// count — every fetch moved from main memory to the scratchpad saves a
// fixed amount of energy — so the best selection is a 0/1 knapsack over
// (profit = fetches, weight = size), solved here exactly with dynamic
// programming, as in the original paper.
//
// Two properties make this baseline inaccurate on a cache-equipped
// hierarchy (paper §2): fetch counts ignore the hit/miss split that
// actually determines energy, and the selected objects are *moved* out of
// the main-memory image, shifting every remaining object's cache mapping
// (layout.Move semantics) with potentially erratic results.
package steinke

import (
	"fmt"

	"repro/internal/trace"
)

// Allocation is the knapsack result.
type Allocation struct {
	// InSPM[i] reports whether trace i is placed in the scratchpad.
	InSPM []bool
	// UsedBytes is the scratchpad space consumed.
	UsedBytes int
	// Profit is the total selected profit (fetch count).
	Profit int64
}

// Allocate selects the profit-maximal set of traces that fits the
// scratchpad, by exact 0/1 knapsack DP over bytes. Ties are broken toward
// lower trace IDs for determinism.
func Allocate(set *trace.Set, spmSize int) (*Allocation, error) {
	if spmSize < 0 {
		return nil, fmt.Errorf("steinke: negative scratchpad size %d", spmSize)
	}
	n := len(set.Traces)
	// dp[w] = best profit with capacity w; keep[i][w] records choices.
	dp := make([]int64, spmSize+1)
	keep := make([][]bool, n)
	for i, t := range set.Traces {
		keep[i] = make([]bool, spmSize+1)
		w := t.RawBytes
		profit := t.Fetches
		if w == 0 || w > spmSize || profit <= 0 {
			continue
		}
		for c := spmSize; c >= w; c-- {
			if cand := dp[c-w] + profit; cand > dp[c] {
				dp[c] = cand
				keep[i][c] = true
			}
		}
	}
	a := &Allocation{InSPM: make([]bool, n), Profit: dp[spmSize]}
	c := spmSize
	for i := n - 1; i >= 0; i-- {
		if keep[i][c] {
			a.InSPM[i] = true
			a.UsedBytes += set.Traces[i].RawBytes
			c -= set.Traces[i].RawBytes
		}
	}
	return a, nil
}
