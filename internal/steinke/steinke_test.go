package steinke

import (
	"fmt"
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

// makeSet builds one trace per loop spec (loop block + jump link), exactly
// as the core package's tests do.
func makeSet(t *testing.T, loops []struct{ Code, Trips int }) *trace.Set {
	t.Helper()
	pb := ir.NewProgramBuilder("synthetic")
	f := pb.Func("main")
	for i, l := range loops {
		head := fmt.Sprintf("h%d", i)
		link := fmt.Sprintf("j%d", i)
		next := fmt.Sprintf("h%d", i+1)
		if i == len(loops)-1 {
			next = "end"
		}
		f.Block(head).Code(l.Code).Branch(head, link, ir.Loop{Trips: l.Trips})
		f.Block(link).ALU(1).Jump(next)
	}
	f.Block("end").Return()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	set, err := trace.Build(p, prof, trace.Options{MaxBytes: 4096, LineBytes: 16})
	if err != nil {
		t.Fatalf("trace.Build: %v", err)
	}
	return set
}

func TestRejectsNegativeSize(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{{5, 10}})
	if _, err := Allocate(set, -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestZeroCapacitySelectsNothing(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{{5, 10}, {6, 20}})
	a, err := Allocate(set, 0)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if a.UsedBytes != 0 || a.Profit != 0 {
		t.Errorf("empty knapsack selected %d bytes, profit %d", a.UsedBytes, a.Profit)
	}
	for i, in := range a.InSPM {
		if in {
			t.Errorf("trace %d selected with zero capacity", i)
		}
	}
}

func TestPicksHottestThatFits(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{
		{10, 1000}, // hottest
		{10, 10},
		{10, 500},
	})
	var hot, mid int = -1, -1
	var hotF, midF int64
	for _, tr := range set.Traces {
		if tr.Fetches > hotF {
			mid, midF = hot, hotF
			hot, hotF = tr.ID, tr.Fetches
		} else if tr.Fetches > midF {
			mid, midF = tr.ID, tr.Fetches
		}
	}
	spm := set.Traces[hot].RawBytes + set.Traces[mid].RawBytes
	a, err := Allocate(set, spm)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if !a.InSPM[hot] || !a.InSPM[mid] {
		t.Errorf("knapsack missed the hottest traces: %v", a.InSPM)
	}
	if a.UsedBytes > spm {
		t.Errorf("capacity violated: %d > %d", a.UsedBytes, spm)
	}
}

// TestMatchesBruteForce cross-validates the DP against subset enumeration.
func TestMatchesBruteForce(t *testing.T) {
	rng := uint64(99)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for trial := 0; trial < 10; trial++ {
		nLoops := 3 + next(4)
		loops := make([]struct{ Code, Trips int }, nLoops)
		for i := range loops {
			loops[i] = struct{ Code, Trips int }{Code: 3 + next(12), Trips: 5 + next(300)}
		}
		set := makeSet(t, loops)
		spm := 32 + next(160)
		a, err := Allocate(set, spm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force.
		n := len(set.Traces)
		var best int64
		for mask := 0; mask < 1<<n; mask++ {
			bytes := 0
			var profit int64
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					bytes += set.Traces[i].RawBytes
					profit += set.Traces[i].Fetches
				}
			}
			if bytes <= spm && profit > best {
				best = profit
			}
		}
		if a.Profit != best {
			t.Errorf("trial %d: DP profit %d, brute force %d", trial, a.Profit, best)
		}
	}
}

func TestSelectionConsistent(t *testing.T) {
	set := makeSet(t, []struct{ Code, Trips int }{
		{8, 100}, {9, 200}, {7, 300},
	})
	a, err := Allocate(set, 120)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	var bytes int
	var profit int64
	for i, in := range a.InSPM {
		if in {
			bytes += set.Traces[i].RawBytes
			profit += set.Traces[i].Fetches
		}
	}
	if bytes != a.UsedBytes {
		t.Errorf("UsedBytes %d, recomputed %d", a.UsedBytes, bytes)
	}
	if profit != a.Profit {
		t.Errorf("Profit %d, recomputed %d", a.Profit, profit)
	}
}
