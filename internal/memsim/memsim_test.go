package memsim

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/loopcache"
	"repro/internal/sim"
	"repro/internal/trace"
)

// thrashFixture builds a program with two hot loops that conflict in a
// small direct-mapped cache when laid out a cache-size apart.
func thrashFixture(t *testing.T) (*ir.Program, *trace.Set) {
	t.Helper()
	pb := ir.NewProgramBuilder("thrash")
	f := pb.Func("main")
	// outer loop alternates between two bodies, each one line long.
	f.Block("a").Code(11).Branch("a", "b", ir.Loop{Trips: 4}) // 48B padded
	f.Block("b").Code(11).Branch("b", "c", ir.Loop{Trips: 4})
	f.Block("c").ALU(1).Branch("a", "end", ir.Loop{Trips: 200})
	f.Block("end").Return()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	set, err := trace.Build(p, prof, trace.Options{MaxBytes: 64, LineBytes: 16})
	if err != nil {
		t.Fatalf("trace.Build: %v", err)
	}
	return p, set
}

func costFor(t testing.TB, cacheCfg cache.Config, spm int) energy.CostModel {
	t.Helper()
	cfg := energy.Config{SPMBytes: spm}
	if cacheCfg.SizeBytes > 0 {
		cfg.Cache = energy.CacheGeometry{
			SizeBytes: cacheCfg.SizeBytes,
			LineBytes: cacheCfg.LineBytes,
			Assoc:     cacheCfg.Assoc,
		}
	}
	return mustCost(t, cfg)
}

// mustCost builds a cost model, failing the test on error.
func mustCost(t testing.TB, cfg energy.Config) energy.CostModel {
	t.Helper()
	cm, err := energy.NewCostModel(cfg)
	if err != nil {
		t.Fatalf("NewCostModel: %v", err)
	}
	return cm
}

// mustLayout builds a layout, failing the test on error.
func mustLayout(t testing.TB, set *trace.Set, alloc []bool, opt layout.Options) *layout.Layout {
	t.Helper()
	l, err := layout.New(set, alloc, opt)
	if err != nil {
		t.Fatalf("layout.New: %v", err)
	}
	return l
}

func TestCacheOnlyRunAccounting(t *testing.T) {
	p, set := thrashFixture(t)
	lay := mustLayout(t, set, nil, layout.Options{})
	ccfg := cache.Config{SizeBytes: 2048, LineBytes: 16, Assoc: 1}
	res, err := Run(p, lay, Config{Cache: ccfg, Cost: costFor(t, ccfg, 0), TrackConflicts: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SPMAccesses != 0 {
		t.Errorf("no SPM configured but %d SPM accesses", res.SPMAccesses)
	}
	if res.CacheAccesses != res.Fetches {
		t.Errorf("cache accesses %d != fetches %d", res.CacheAccesses, res.Fetches)
	}
	if res.CacheHits+res.CacheMisses != res.CacheAccesses {
		t.Error("hits+misses != accesses")
	}
	if res.ColdMisses+res.ConflictMisses != res.CacheMisses {
		t.Error("cold+conflict != misses")
	}
	// A 2kB cache holds this tiny program entirely: only cold misses.
	if res.ConflictMisses != 0 {
		t.Errorf("program fits in cache; got %d conflict misses", res.ConflictMisses)
	}
	// Per-MO fetches sum to the total.
	var sum int64
	for _, mo := range res.PerMO {
		sum += mo.Fetches
	}
	if sum != res.Fetches {
		t.Errorf("per-MO fetch sum %d != %d", sum, res.Fetches)
	}
	// Per-MO fetches equal the trace f_i.
	for _, tr := range set.Traces {
		if res.PerMO[tr.ID].Fetches != tr.Fetches {
			t.Errorf("trace %d fetches %d, want f_i=%d", tr.ID, res.PerMO[tr.ID].Fetches, tr.Fetches)
		}
	}
}

func TestThrashingProducesConflicts(t *testing.T) {
	p, set := thrashFixture(t)
	lay := mustLayout(t, set, nil, layout.Options{})
	// 128B direct-mapped cache: the two 48-64B hot loops plus the latch
	// cannot coexist; conflicts are inevitable.
	ccfg := cache.Config{SizeBytes: 64, LineBytes: 16, Assoc: 1}
	res, err := Run(p, lay, Config{Cache: ccfg, Cost: costFor(t, ccfg, 0), TrackConflicts: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ConflictMisses == 0 {
		t.Fatal("expected conflict misses in 64B cache")
	}
	if len(res.Conflicts) == 0 {
		t.Fatal("conflict tracking produced no edges")
	}
	// The attribution must sum to the conflict misses.
	var sum int64
	for _, n := range res.Conflicts {
		sum += n
	}
	if sum != res.ConflictMisses {
		t.Errorf("attributed %d, conflict misses %d", sum, res.ConflictMisses)
	}
	// Per-MO misses sum.
	var moMisses int64
	for _, mo := range res.PerMO {
		moMisses += mo.Misses
	}
	if moMisses != res.CacheMisses {
		t.Errorf("per-MO misses %d != %d", moMisses, res.CacheMisses)
	}
}

func TestSPMServesAllocatedTrace(t *testing.T) {
	p, set := thrashFixture(t)
	hot := 0
	for _, tr := range set.Traces {
		if tr.Fetches > set.Traces[hot].Fetches {
			hot = tr.ID
		}
	}
	alloc := make([]bool, len(set.Traces))
	alloc[hot] = true
	lay := mustLayout(t, set, alloc, layout.Options{Mode: layout.Copy, SPMSize: 128})
	ccfg := cache.Config{SizeBytes: 64, LineBytes: 16, Assoc: 1}
	res, err := Run(p, lay, Config{Cache: ccfg, Cost: costFor(t, ccfg, 128)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SPMAccesses != set.Traces[hot].Fetches {
		t.Errorf("SPM accesses %d, want %d", res.SPMAccesses, set.Traces[hot].Fetches)
	}
	if res.PerMO[hot].SPM != res.SPMAccesses {
		t.Errorf("per-MO SPM %d, want %d", res.PerMO[hot].SPM, res.SPMAccesses)
	}
	if res.PerMO[hot].Misses != 0 {
		t.Errorf("SPM-resident trace suffered %d cache misses", res.PerMO[hot].Misses)
	}
	if res.Energy.SPM <= 0 {
		t.Error("SPM energy not accounted")
	}
	// Energy conservation: component energies must equal per-event sums.
	cost := costFor(t, ccfg, 128)
	wantSPM := float64(res.SPMAccesses) * cost.SPMAccess
	if math.Abs(res.Energy.SPM-wantSPM) > 1e-6 {
		t.Errorf("SPM energy %g, want %g", res.Energy.SPM, wantSPM)
	}
	wantHit := float64(res.CacheHits) * cost.CacheHit
	if math.Abs(res.Energy.CacheHits-wantHit) > 1e-6 {
		t.Errorf("hit energy %g, want %g", res.Energy.CacheHits, wantHit)
	}
	wantMiss := float64(res.CacheMisses) * cost.CacheMiss
	if math.Abs(res.Energy.CacheMisses-wantMiss) > 1e-6 {
		t.Errorf("miss energy %g, want %g", res.Energy.CacheMisses, wantMiss)
	}
	if got := res.TotalEnergyMicroJ(); math.Abs(got-res.TotalEnergyNJ()/1000) > 1e-12 {
		t.Errorf("unit conversion wrong: %g vs %g", got, res.TotalEnergyNJ())
	}
}

func TestSPMReducesEnergyOnThrashingWorkload(t *testing.T) {
	p, set := thrashFixture(t)
	ccfg := cache.Config{SizeBytes: 64, LineBytes: 16, Assoc: 1}
	plain := mustLayout(t, set, nil, layout.Options{})
	base, err := Run(p, plain, Config{Cache: ccfg, Cost: costFor(t, ccfg, 0)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	hot := 0
	for _, tr := range set.Traces {
		if tr.Fetches > set.Traces[hot].Fetches {
			hot = tr.ID
		}
	}
	alloc := make([]bool, len(set.Traces))
	alloc[hot] = true
	lay := mustLayout(t, set, alloc, layout.Options{Mode: layout.Copy, SPMSize: 128})
	withSPM, err := Run(p, lay, Config{Cache: ccfg, Cost: costFor(t, ccfg, 128)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if withSPM.TotalEnergyNJ() >= base.TotalEnergyNJ() {
		t.Errorf("SPM did not reduce energy: %g vs %g",
			withSPM.TotalEnergyNJ(), base.TotalEnergyNJ())
	}
}

func TestLoopCachePath(t *testing.T) {
	p, set := thrashFixture(t)
	lay := mustLayout(t, set, nil, layout.Options{})
	// Preload the hottest trace's exec range.
	hot := 0
	for _, tr := range set.Traces {
		if tr.Fetches > set.Traces[hot].Fetches {
			hot = tr.ID
		}
	}
	base, size := lay.ExecRange(hot)
	ctrl, err := loopcache.NewController(
		loopcache.Config{SizeBytes: 128, MaxRegions: 4},
		[]loopcache.Region{{Start: base, End: base + uint32(size), Name: "hot"}},
	)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	ccfg := cache.Config{SizeBytes: 64, LineBytes: 16, Assoc: 1}
	cost := mustCost(t, energy.Config{
		Cache:            energy.CacheGeometry{SizeBytes: 64, LineBytes: 16, Assoc: 1},
		LoopCacheBytes:   128,
		LoopCacheEntries: 4,
	})
	res, err := Run(p, lay, Config{Cache: ccfg, LoopCache: ctrl, Cost: cost})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.LoopCacheAccesses != set.Traces[hot].Fetches {
		t.Errorf("loop cache accesses %d, want %d", res.LoopCacheAccesses, set.Traces[hot].Fetches)
	}
	if res.PerMO[hot].LoopCache != res.LoopCacheAccesses {
		t.Error("per-MO loop cache accounting wrong")
	}
	// Controller energy charged on every non-SPM fetch.
	wantCtrl := float64(res.Fetches) * cost.LoopCacheController
	if math.Abs(res.Energy.LoopCacheController-wantCtrl) > 1e-6 {
		t.Errorf("controller energy %g, want %g", res.Energy.LoopCacheController, wantCtrl)
	}
}

func TestNoCacheGoesToMainMemory(t *testing.T) {
	p, set := thrashFixture(t)
	lay := mustLayout(t, set, nil, layout.Options{})
	cost := mustCost(t, energy.Config{})
	res, err := Run(p, lay, Config{Cost: cost})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.MainMemoryFetches != res.Fetches {
		t.Errorf("main memory fetches %d, want all %d", res.MainMemoryFetches, res.Fetches)
	}
	if res.CacheAccesses != 0 {
		t.Error("no cache configured but cache accessed")
	}
	if res.Energy.MainMemory <= 0 {
		t.Error("main memory energy missing")
	}
}

func TestBadCacheConfigRejected(t *testing.T) {
	p, set := thrashFixture(t)
	lay := mustLayout(t, set, nil, layout.Options{})
	_, err := Run(p, lay, Config{Cache: cache.Config{SizeBytes: 100, LineBytes: 16, Assoc: 1}})
	if err == nil {
		t.Fatal("expected config error")
	}
}

func TestDeterminism(t *testing.T) {
	p, set := thrashFixture(t)
	lay := mustLayout(t, set, nil, layout.Options{})
	ccfg := cache.Config{SizeBytes: 64, LineBytes: 16, Assoc: 1}
	run := func() *Result {
		res, err := Run(p, lay, Config{Cache: ccfg, Cost: costFor(t, ccfg, 0), TrackConflicts: true})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Fetches != b.Fetches || a.CacheMisses != b.CacheMisses ||
		a.TotalEnergyNJ() != b.TotalEnergyNJ() {
		t.Error("simulation not deterministic")
	}
	for k, v := range a.Conflicts {
		if b.Conflicts[k] != v {
			t.Errorf("conflict %v differs: %d vs %d", k, v, b.Conflicts[k])
		}
	}
}

func TestCycleAccounting(t *testing.T) {
	p, set := thrashFixture(t)
	lay := mustLayout(t, set, nil, layout.Options{})
	ccfg := cache.Config{SizeBytes: 64, LineBytes: 16, Assoc: 1}
	res, err := Run(p, lay, Config{Cache: ccfg, Cost: costFor(t, ccfg, 0)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tm := DefaultTiming()
	lineWords := int64((ccfg.LineBytes + 3) / 4)
	want := res.CacheHits*tm.CacheHit +
		res.CacheMisses*(tm.CacheHit+tm.MissSetup+tm.MissPerWord*lineWords)
	if res.Cycles != want {
		t.Errorf("cycles = %d, want %d", res.Cycles, want)
	}
	if cpf := res.CyclesPerFetch(); cpf <= 1 {
		t.Errorf("CyclesPerFetch = %g, want > 1 with misses present", cpf)
	}
}

func TestCyclesImproveWithSPM(t *testing.T) {
	p, set := thrashFixture(t)
	ccfg := cache.Config{SizeBytes: 64, LineBytes: 16, Assoc: 1}
	plain := mustLayout(t, set, nil, layout.Options{})
	base, err := Run(p, plain, Config{Cache: ccfg, Cost: costFor(t, ccfg, 0)})
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, tr := range set.Traces {
		if tr.Fetches > set.Traces[hot].Fetches {
			hot = tr.ID
		}
	}
	alloc := make([]bool, len(set.Traces))
	alloc[hot] = true
	lay := mustLayout(t, set, alloc, layout.Options{Mode: layout.Copy, SPMSize: 128})
	spm, err := Run(p, lay, Config{Cache: ccfg, Cost: costFor(t, ccfg, 128)})
	if err != nil {
		t.Fatal(err)
	}
	if spm.Cycles >= base.Cycles {
		t.Errorf("SPM did not cut fetch cycles: %d vs %d", spm.Cycles, base.Cycles)
	}
}

func TestCustomTiming(t *testing.T) {
	p, set := thrashFixture(t)
	lay := mustLayout(t, set, nil, layout.Options{})
	ccfg := cache.Config{SizeBytes: 2048, LineBytes: 16, Assoc: 1}
	tm := Timing{SPM: 1, LoopCache: 1, CacheHit: 2, MissSetup: 10, MissPerWord: 5}
	res, err := Run(p, lay, Config{Cache: ccfg, Cost: costFor(t, ccfg, 0), Timing: &tm})
	if err != nil {
		t.Fatal(err)
	}
	want := res.CacheHits*2 + res.CacheMisses*(2+10+5*4)
	if res.Cycles != want {
		t.Errorf("custom timing: cycles = %d, want %d", res.Cycles, want)
	}
}

func TestZeroFetchCyclesPerFetch(t *testing.T) {
	r := &Result{}
	if r.CyclesPerFetch() != 0 {
		t.Error("CyclesPerFetch on empty result should be 0")
	}
}

func TestL2Hierarchy(t *testing.T) {
	p, set := thrashFixture(t)
	lay := mustLayout(t, set, nil, layout.Options{})
	l1 := cache.Config{SizeBytes: 64, LineBytes: 16, Assoc: 1}
	l2 := cache.Config{SizeBytes: 512, LineBytes: 16, Assoc: 2}
	cost := mustCost(t, energy.Config{
		Cache: energy.CacheGeometry{SizeBytes: 64, LineBytes: 16, Assoc: 1},
		L2:    energy.CacheGeometry{SizeBytes: 512, LineBytes: 16, Assoc: 2},
	})
	res, err := Run(p, lay, Config{Cache: l1, L2: l2, Cost: cost})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Exactly one L2 access per L1 miss; L2 misses are a subset.
	if res.L2Accesses != res.CacheMisses {
		t.Errorf("L2 accesses %d != L1 misses %d", res.L2Accesses, res.CacheMisses)
	}
	if res.L2Hits+res.L2Misses != res.L2Accesses {
		t.Error("L2 hits+misses != accesses")
	}
	if res.L2Misses > res.CacheMisses {
		t.Error("L2 misses exceed L1 misses")
	}
	// The thrashing working set fits in the 512B L2: it must absorb most
	// of the L1 misses, cutting energy versus the single-level hierarchy.
	single := mustCost(t, energy.Config{
		Cache: energy.CacheGeometry{SizeBytes: 64, LineBytes: 16, Assoc: 1},
	})
	base, err := Run(p, lay, Config{Cache: l1, Cost: single})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEnergyNJ() >= base.TotalEnergyNJ() {
		t.Errorf("L2 did not help a thrashing workload: %g vs %g",
			res.TotalEnergyNJ(), base.TotalEnergyNJ())
	}
	if res.Cycles >= base.Cycles {
		t.Errorf("L2 did not cut stall cycles: %d vs %d", res.Cycles, base.Cycles)
	}
}

func TestL2RequiresL1(t *testing.T) {
	p, set := thrashFixture(t)
	lay := mustLayout(t, set, nil, layout.Options{})
	_, err := Run(p, lay, Config{L2: cache.Config{SizeBytes: 512, LineBytes: 16, Assoc: 1}})
	if err == nil {
		t.Fatal("L2 without L1 accepted")
	}
}
