// Package memsim is the memory-hierarchy simulator (the reproduction's
// analogue of the Dortmund memsim tool [8]): it drives the I-cache,
// scratchpad window and optional preloaded loop cache with a program's
// instruction fetch stream and accounts accesses, misses, conflict
// attributions and energy per the cost model.
//
// The simulated architecture is the paper's Figure 1: the scratchpad (or
// the loop cache) sits at the same level as the L1 I-cache; both front an
// off-chip main memory. A fetch is served by exactly one component:
//
//	scratchpad window hit → scratchpad array
//	loop-cache region hit → loop-cache array (plus controller, every fetch)
//	otherwise             → I-cache (hit, or miss + main-memory line fill)
//	no cache configured   → main memory directly
package memsim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/loopcache"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Simulation totals, accumulated across every run in the process so run
// reports can state aggregate hierarchy behavior per study.
var (
	mSimRuns    = obs.GetCounter("casa_sim_runs_total")
	mSimFetches = obs.GetCounter("casa_sim_fetches_total")
	mSimHits    = obs.GetCounter("casa_sim_cache_hits_total")
	mSimMisses  = obs.GetCounter("casa_sim_cache_misses_total")
	mSimSPM     = obs.GetCounter("casa_sim_spm_accesses_total")
	mSimEvicts  = obs.GetCounter("casa_sim_cache_evictions_total")
	// Line-granular engine work counters: cache-line transitions driven
	// and bulk run deliveries received. Together with
	// casa_trace_replays_total they are the benchdiff-gated evidence that
	// the fast path is actually taken (a regression to per-instruction
	// dispatch shows up as bulk fetches collapsing toward fetch counts).
	mSimLines = obs.GetCounter("casa_sim_lines_total")
	mSimBulk  = obs.GetCounter("casa_sim_bulk_fetches_total")
)

// Config selects the hierarchy for one simulation run.
type Config struct {
	// Cache configures the L1 I-cache; SizeBytes == 0 disables it and
	// sends cache-path fetches straight to main memory.
	Cache cache.Config
	// L2 configures an optional second-level I-cache behind the L1
	// (SizeBytes == 0 disables it). Per the paper's §4 remark, the
	// allocator needs no changes for it — this exists to verify that
	// claim.
	L2 cache.Config
	// LoopCache, when non-nil, routes fetches matching its regions to the
	// loop-cache array and charges the controller on every fetch.
	LoopCache *loopcache.Controller
	// Cost is the per-event energy model.
	Cost energy.CostModel
	// TrackConflicts enables per-pair conflict attribution (m_ij), needed
	// when profiling for the conflict graph. It costs a map update per
	// conflict miss.
	TrackConflicts bool
	// KeepCache retains the final L1 state on the Result so callers can
	// dump per-set residency and statistics after the run.
	KeepCache bool
	// Timing overrides the default fetch-latency model (nil = defaults).
	Timing *Timing
	// Reference selects the instruction-granular reference engine: the
	// interpreter is re-executed and every fetch is classified and
	// accounted one instruction at a time. The default line-granular
	// trace-replay engine is defined to be bit-identical to it (the
	// differential tests enforce this); the reference survives as their
	// oracle and as a debugging fallback.
	Reference bool
}

// Timing is the fetch-latency model (cycles per event). On-chip SRAMs
// (scratchpad, loop cache, cache hit) take one cycle; a miss stalls for
// the off-chip burst setup plus per-word transfer of the line fill.
type Timing struct {
	// SPM is the scratchpad access latency.
	SPM int64
	// LoopCache is the loop-cache access latency.
	LoopCache int64
	// CacheHit is the I-cache hit latency.
	CacheHit int64
	// L2Hit is the second-level probe latency paid on an L1 miss that the
	// L2 serves.
	L2Hit int64
	// MissSetup is the off-chip burst setup penalty on a miss.
	MissSetup int64
	// MissPerWord is the per-32-bit-word transfer penalty of a line fill
	// (and of a direct main-memory fetch).
	MissPerWord int64
}

// DefaultTiming models an ARM7-class board: single-cycle on-chip SRAMs, a
// 4-cycle burst setup and 2 wait states per transferred word.
func DefaultTiming() Timing {
	return Timing{SPM: 1, LoopCache: 1, CacheHit: 1, L2Hit: 4, MissSetup: 4, MissPerWord: 2}
}

// MOStats aggregates per-memory-object counts.
type MOStats struct {
	// Fetches is the object's total instruction fetches (f_i).
	Fetches int64
	// SPM counts fetches served by the scratchpad.
	SPM int64
	// LoopCache counts fetches served by the loop cache.
	LoopCache int64
	// Hits and Misses count the object's I-cache outcomes.
	Hits   int64
	Misses int64
}

// Energy aggregates per-component energy in nanojoules.
type Energy struct {
	SPM                 float64
	CacheHits           float64
	CacheMisses         float64
	LoopCache           float64
	LoopCacheController float64
	MainMemory          float64
}

// Total sums all components.
func (e Energy) Total() float64 {
	return e.SPM + e.CacheHits + e.CacheMisses + e.LoopCache + e.LoopCacheController + e.MainMemory
}

// ConflictKey identifies a directed conflict pair: Victim missed because
// Evictor replaced its line.
type ConflictKey struct {
	// Victim is the memory object whose miss is being attributed (x_i).
	Victim int
	// Evictor is the object whose line occupied the victim's slot (x_j).
	Evictor int
}

// Result is the outcome of one simulation run.
type Result struct {
	// Fetches is the total instruction fetch count.
	Fetches int64
	// SPMAccesses counts fetches served by the scratchpad.
	SPMAccesses int64
	// LoopCacheAccesses counts fetches served by the loop cache.
	LoopCacheAccesses int64
	// CacheAccesses counts fetches that went to the I-cache.
	CacheAccesses int64
	// CacheHits and CacheMisses split CacheAccesses.
	CacheHits   int64
	CacheMisses int64
	// L2Accesses, L2Hits and L2Misses describe the optional second level
	// (an L2 access happens exactly once per L1 miss).
	L2Accesses int64
	L2Hits     int64
	L2Misses   int64
	// ColdMisses counts misses that filled an invalid line (no victim).
	ColdMisses int64
	// ConflictMisses counts misses that evicted a valid line.
	ConflictMisses int64
	// MainMemoryFetches counts direct main-memory fetches (no cache).
	MainMemoryFetches int64
	// PerMO holds per-object statistics, indexed by trace ID.
	PerMO []MOStats
	// Conflicts holds m_ij when Config.TrackConflicts is set: the number
	// of misses of Victim caused by Evictor (self-conflicts included).
	Conflicts map[ConflictKey]int64
	// Energy is the per-component energy breakdown (nJ).
	Energy Energy
	// Cycles is the total fetch latency under the timing model — the
	// instruction-memory contribution to execution time.
	Cycles int64
	// Cache is the final L1 state (per-set residency and statistics)
	// when Config.KeepCache was set; nil otherwise.
	Cache *cache.Cache
}

// CyclesPerFetch returns the run's average fetch latency.
func (r *Result) CyclesPerFetch() float64 {
	if r.Fetches == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Fetches)
}

// TotalEnergyNJ returns the run's total energy in nanojoules.
func (r *Result) TotalEnergyNJ() float64 { return r.Energy.Total() }

// TotalEnergyMicroJ returns the run's total energy in microjoules, the
// unit of the paper's Table 1.
func (r *Result) TotalEnergyMicroJ() float64 { return r.Energy.Total() / 1000 }

// hier drives the hierarchy at cache-line granularity. It implements
// sim.RunFetcher, so whole same-block instruction runs arrive as one
// dynamic dispatch; each run is split at scratchpad-window, loop-cache-
// region and cache-line boundaries and every segment is accounted in
// bulk — cache.AccessN touches the tag array once per line instead of
// once per instruction. The splits reproduce the per-instruction
// classification exactly: a fetch at address a+4i belongs to a segment
// iff the scalar reference would classify it the same way, because
// segment lengths are computed as the count of fetch addresses strictly
// below the next boundary (ceil((boundary-addr)/4)).
type hier struct {
	res   *Result
	ic    *cache.Cache
	l2    *cache.Cache
	lc    *loopcache.Controller
	track bool

	hasSPM   bool
	spmBase  uint64
	spmEnd   uint64
	lineMask uint64 // LineBytes-1; lines are power-of-two sized

	// conf densely accumulates m_ij (victim-major) during the run; the
	// map the Result exposes is folded from it afterwards, keeping hash
	// work out of the per-miss path.
	conf []int64
	nMO  int

	// missFn is the L1 miss handler bound once per run (L2 access,
	// cold/conflict classification, m_ij attribution), so cacheRun can
	// hand cache.AccessRun a callback without allocating per call.
	missFn func(addr uint32, r cache.Result)
	missMO int // memory object missFn attributes to; set by cacheRun

	lines int64 // cache-line transitions driven (casa_sim_lines_total)
	bulk  int64 // bulk run deliveries (casa_sim_bulk_fetches_total)
}

// Fetch implements sim.Fetcher for the stray single fetches (appended
// jumps) the trace replay delivers individually.
func (h *hier) Fetch(addr uint32, mo int) { h.FetchRun(addr, 1, mo) }

// segLen returns how many 4-byte fetches starting at addr precede the
// boundary: the count of i ≥ 0 with addr+4i < end.
func segLen(addr, end uint64) int {
	return int((end - addr + 3) / 4)
}

// FetchRun implements sim.RunFetcher: n consecutive instruction fetches
// from base, all owned by mo, accounted exactly as n scalar fetches.
func (h *hier) FetchRun(base uint32, n int, mo int) {
	if n <= 0 {
		return
	}
	h.bulk++
	res := h.res
	st := &res.PerMO[mo]
	res.Fetches += int64(n)
	st.Fetches += int64(n)
	if !h.hasSPM && h.lc == nil && h.ic != nil {
		// Cache-only hierarchy (the baseline and conflict-profiling
		// configuration): the whole run goes to the I-cache.
		h.cacheRun(base, n, mo)
		return
	}
	// Addresses are widened to uint64 so boundary arithmetic cannot wrap;
	// layouts never place a block across the top of the address space.
	addr := uint64(base)
	for n > 0 {
		k := n
		if h.hasSPM {
			if addr >= h.spmBase && addr < h.spmEnd {
				// Inside the scratchpad window: serve up to its end.
				if kw := segLen(addr, h.spmEnd); kw < k {
					k = kw
				}
				res.SPMAccesses += int64(k)
				st.SPM += int64(k)
				addr += uint64(k) * 4
				n -= k
				continue
			}
			if addr < h.spmBase {
				// Below the window: the segment may not cross into it.
				if kw := segLen(addr, h.spmBase); kw < k {
					k = kw
				}
			}
		}
		// [addr, addr+4k) now lies entirely outside the scratchpad window.
		if h.lc != nil {
			match, boundary := h.lc.Segment(uint32(addr))
			if kr := segLen(addr, uint64(boundary)); kr < k {
				k = kr
			}
			if match {
				res.LoopCacheAccesses += int64(k)
				st.LoopCache += int64(k)
				addr += uint64(k) * 4
				n -= k
				continue
			}
		}
		if h.ic == nil {
			res.MainMemoryFetches += int64(k)
			addr += uint64(k) * 4
			n -= k
			continue
		}
		h.cacheRun(uint32(addr), k, mo)
		addr += uint64(k) * 4
		n -= k
	}
}

// FetchRunRepeat implements sim.RunRepeater: count back-to-back
// deliveries of the same block run (a taken self-loop). Hot loops spend
// almost all their iterations in a steady state the simulator can prove
// and then skip:
//
//   - If every fetch of the run goes to the I-cache, passes are simulated
//     one at a time until one completes with zero misses. An all-hit pass
//     evicts nothing, so the resident set — and therefore the outcome of
//     every later pass — is unchanged: the remaining passes are accounted
//     in bulk (SkipHitRuns keeps the per-set counters and the replacement
//     clock exact) and the final pass is simulated for real so every LRU
//     stamp and the MRU hint land on their exact end-of-run values.
//
//   - If a pass drives no I-cache access at all (the run sits in the
//     scratchpad window, in loop-cache regions, or there is no cache),
//     the components it touches are stateless per access, so each pass
//     adds one fixed counter delta — measured on the first pass and
//     multiplied out.
//
// Runs that mix cache and non-cache segments, and loops that never reach
// an all-hit pass (working set larger than the cache), fall back to
// simulating every pass. All paths are exactly equivalent to count
// successive FetchRun calls.
func (h *hier) FetchRunRepeat(base uint32, n int, mo int, count int64) {
	if n <= 0 || count <= 0 {
		return
	}
	res := h.res
	end := uint64(base) + 4*uint64(n)
	if h.ic != nil && h.lc == nil &&
		(!h.hasSPM || end <= h.spmBase || uint64(base) >= h.spmEnd) {
		done, steady := int64(0), false
		for ; done < count; done++ {
			m0 := res.CacheMisses
			h.FetchRun(base, n, mo)
			if res.CacheMisses == m0 {
				done++
				steady = true
				break
			}
		}
		rem := count - done
		if !steady || rem == 0 {
			return
		}
		if skip := rem - 1; skip > 0 {
			res.Fetches += skip * int64(n)
			res.CacheAccesses += skip * int64(n)
			res.CacheHits += skip * int64(n)
			st := &res.PerMO[mo]
			st.Fetches += skip * int64(n)
			st.Hits += skip * int64(n)
			firstLine := uint64(base) &^ h.lineMask
			lastLine := (uint64(base) + 4*uint64(n-1)) &^ h.lineMask
			h.lines += skip * int64((lastLine-firstLine)/(h.lineMask+1)+1)
			h.bulk += skip
			h.ic.SkipHitRuns(base, n, skip)
		}
		h.FetchRun(base, n, mo) // final pass: exact stamps and MRU hint
		return
	}

	st := &res.PerMO[mo]
	f0, s0, l0, m0, ca0 := res.Fetches, res.SPMAccesses, res.LoopCacheAccesses,
		res.MainMemoryFetches, res.CacheAccesses
	stF0, stS0, stL0 := st.Fetches, st.SPM, st.LoopCache
	h.FetchRun(base, n, mo)
	if res.CacheAccesses != ca0 {
		// The run reaches the I-cache (mixed segments): simulate every pass.
		for j := int64(1); j < count; j++ {
			h.FetchRun(base, n, mo)
		}
		return
	}
	k := count - 1
	res.Fetches += k * (res.Fetches - f0)
	res.SPMAccesses += k * (res.SPMAccesses - s0)
	res.LoopCacheAccesses += k * (res.LoopCacheAccesses - l0)
	res.MainMemoryFetches += k * (res.MainMemoryFetches - m0)
	st.Fetches += k * (st.Fetches - stF0)
	st.SPM += k * (st.SPM - stS0)
	st.LoopCache += k * (st.LoopCache - stL0)
	h.bulk += k
}

// cacheRun sends k consecutive fetches at addr through the I-cache,
// splitting at line boundaries: within one line the first access decides
// hit or miss and the rest are guaranteed hits, so cache.AccessN
// accounts them in bulk while this level attributes the outcome — the
// per-MO split, cold/conflict classification and m_ij edges — exactly
// as the scalar reference does per instruction.
func (h *hier) cacheRun(addr uint32, k int, mo int) {
	res := h.res
	res.CacheAccesses += int64(k)
	h.missMO = mo
	misses, lines := h.ic.AccessRun(addr, k, mo, h.missFn)
	hits := int64(k) - misses
	h.lines += lines
	res.CacheHits += hits
	res.CacheMisses += misses
	st := &res.PerMO[mo]
	st.Hits += hits
	st.Misses += misses
}

// onMiss attributes one L1 miss: second-level access, cold/conflict
// classification and (when profiling) the m_ij edge. Bound once per run
// as h.missFn.
func (h *hier) onMiss(addr uint32, r cache.Result) {
	res := h.res
	if h.l2 != nil {
		res.L2Accesses++
		if h.l2.Access(addr, h.missMO).Hit {
			res.L2Hits++
		} else {
			res.L2Misses++
		}
	}
	if r.VictimMO == cache.NoMO {
		res.ColdMisses++
	} else {
		res.ConflictMisses++
		if h.track {
			h.conf[h.missMO*h.nMO+r.VictimMO]++
		}
	}
}

// foldConflicts converts the dense m_ij accumulator into the Result's
// sparse map, identical in content to per-miss map updates.
func (h *hier) foldConflicts() {
	for v := 0; v < h.nMO; v++ {
		row := h.conf[v*h.nMO : (v+1)*h.nMO]
		for e, n := range row {
			if n > 0 {
				h.res.Conflicts[ConflictKey{Victim: v, Evictor: e}] = n
			}
		}
	}
}

// Run simulates the program under the given layout and hierarchy.
//
// The default engine replays the memoized execute-once block trace at
// line granularity; Config.Reference re-executes the interpreter and
// accounts per instruction. Both engines produce bit-identical Results —
// every counter, attribution and (because energy and cycles are derived
// from the counters after the run) every float.
func Run(prog *ir.Program, lay *layout.Layout, cfg Config, opts ...sim.Option) (*Result, error) {
	res := &Result{PerMO: make([]MOStats, len(lay.Set().Traces))}
	if cfg.TrackConflicts {
		res.Conflicts = make(map[ConflictKey]int64)
	}

	var ic *cache.Cache
	if cfg.Cache.SizeBytes > 0 {
		var err error
		ic, err = cache.New(cfg.Cache)
		if err != nil {
			return nil, fmt.Errorf("memsim: %w", err)
		}
	}
	var l2 *cache.Cache
	if cfg.L2.SizeBytes > 0 {
		if ic == nil {
			return nil, fmt.Errorf("memsim: L2 configured without an L1")
		}
		var err error
		l2, err = cache.New(cfg.L2)
		if err != nil {
			return nil, fmt.Errorf("memsim: L2: %w", err)
		}
	}
	lc := cfg.LoopCache

	h := &hier{res: res, ic: ic, l2: l2, lc: lc, track: cfg.TrackConflicts}
	h.missFn = h.onMiss
	if base, size := lay.SPMWindow(); size > 0 {
		h.hasSPM = true
		h.spmBase = uint64(base)
		h.spmEnd = uint64(base) + uint64(size)
	}
	if ic != nil {
		h.lineMask = uint64(cfg.Cache.LineBytes) - 1
	}
	if cfg.TrackConflicts {
		h.nMO = len(res.PerMO)
		h.conf = make([]int64, h.nMO*h.nMO)
	}

	switch {
	case cfg.Reference:
		// Instruction-granular oracle: re-execute the interpreter and
		// classify every fetch individually.
		fetch := func(addr uint32, mo int) {
			res.Fetches++
			st := &res.PerMO[mo]
			st.Fetches++
			if lay.IsSPMAddr(addr) {
				res.SPMAccesses++
				st.SPM++
				return
			}
			if lc != nil && lc.Match(addr) {
				res.LoopCacheAccesses++
				st.LoopCache++
				return
			}
			if ic == nil {
				res.MainMemoryFetches++
				return
			}
			res.CacheAccesses++
			r := ic.Access(addr, mo)
			if r.Hit {
				res.CacheHits++
				st.Hits++
				return
			}
			res.CacheMisses++
			st.Misses++
			if l2 != nil {
				res.L2Accesses++
				if l2.Access(addr, mo).Hit {
					res.L2Hits++
				} else {
					res.L2Misses++
				}
			}
			if r.VictimMO == cache.NoMO {
				res.ColdMisses++
			} else {
				res.ConflictMisses++
				if cfg.TrackConflicts {
					res.Conflicts[ConflictKey{Victim: mo, Evictor: r.VictimMO}]++
				}
			}
		}
		if _, err := sim.Run(prog, lay, sim.FetcherFunc(fetch), opts...); err != nil {
			return nil, err
		}
	case len(opts) == 0 && !sim.StreamCacheDisabled():
		// With default run limits the block trace depends only on the
		// program, so replay the memoized execute-once recording under
		// this layout; results are bit-identical to a live run.
		tr, err := sim.CachedTrace(prog)
		if err != nil {
			return nil, err
		}
		tr.Replay(lay, h)
	default:
		// Custom run options (and CASA_STREAM_CACHE=off) bypass the trace
		// cache: re-execute the interpreter, still at line granularity.
		if _, err := sim.Run(prog, lay, h, opts...); err != nil {
			return nil, err
		}
	}

	if cfg.TrackConflicts && !cfg.Reference {
		h.foldConflicts()
	}
	finalize(res, cfg, lc != nil, l2 != nil)
	if cfg.KeepCache {
		res.Cache = ic
	}
	flushMetrics(res, ic, h)
	return res, nil
}

// finalize derives the energy and cycle totals from the run's integer
// event counters. Multiplying count×cost once at the end keeps the hot
// loop float-free, and — because both engines share this function — the
// reference and line-granular engines produce identical floating-point
// energies, not merely close ones.
func finalize(res *Result, cfg Config, hasLC, hasL2 bool) {
	cost := cfg.Cost
	timing := DefaultTiming()
	if cfg.Timing != nil {
		timing = *cfg.Timing
	}
	lineWords := int64(1)
	if cfg.Cache.SizeBytes > 0 {
		lineWords = int64((cfg.Cache.LineBytes + 3) / 4)
	}

	res.Energy.SPM = float64(res.SPMAccesses) * cost.SPMAccess
	res.Energy.CacheHits = float64(res.CacheHits) * cost.CacheHit
	res.Energy.LoopCache = float64(res.LoopCacheAccesses) * cost.LoopCacheHit
	if hasLC {
		// The controller arbitrates every non-SPM fetch.
		res.Energy.LoopCacheController =
			float64(res.Fetches-res.SPMAccesses) * cost.LoopCacheController
	}
	res.Energy.MainMemory = float64(res.MainMemoryFetches) * cost.MainMemoryWord
	if hasL2 {
		// Multi-level: L1 probe+fill per miss, then the L2 transaction.
		res.Energy.CacheMisses =
			float64(res.L2Accesses)*(cost.CacheHit+cost.CacheFill+cost.L2Probe) +
				float64(res.L2Misses)*(cost.L2Fill+cost.MainLine)
	} else {
		res.Energy.CacheMisses = float64(res.CacheMisses) * cost.CacheMiss
	}

	res.Cycles = res.SPMAccesses*timing.SPM +
		res.LoopCacheAccesses*timing.LoopCache +
		res.CacheHits*timing.CacheHit +
		res.MainMemoryFetches*(timing.MissSetup+timing.MissPerWord)
	if hasL2 {
		res.Cycles += res.CacheMisses*(timing.CacheHit+timing.L2Hit) +
			res.L2Misses*(timing.MissSetup+timing.MissPerWord*lineWords)
	} else {
		res.Cycles += res.CacheMisses *
			(timing.CacheHit + timing.MissSetup + timing.MissPerWord*lineWords)
	}
}

// flushMetrics records the run's totals into the default registry — once
// per run, at the end, so the per-fetch path stays metric-free.
func flushMetrics(res *Result, ic *cache.Cache, h *hier) {
	mSimRuns.Inc()
	mSimFetches.Add(res.Fetches)
	mSimHits.Add(res.CacheHits)
	mSimMisses.Add(res.CacheMisses)
	mSimSPM.Add(res.SPMAccesses)
	if ic != nil {
		mSimEvicts.Add(ic.TotalStats().Evictions)
	}
	if h.lines > 0 {
		mSimLines.Add(h.lines)
	}
	if h.bulk > 0 {
		mSimBulk.Add(h.bulk)
	}
}
