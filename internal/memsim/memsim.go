// Package memsim is the memory-hierarchy simulator (the reproduction's
// analogue of the Dortmund memsim tool [8]): it drives the I-cache,
// scratchpad window and optional preloaded loop cache with a program's
// instruction fetch stream and accounts accesses, misses, conflict
// attributions and energy per the cost model.
//
// The simulated architecture is the paper's Figure 1: the scratchpad (or
// the loop cache) sits at the same level as the L1 I-cache; both front an
// off-chip main memory. A fetch is served by exactly one component:
//
//	scratchpad window hit → scratchpad array
//	loop-cache region hit → loop-cache array (plus controller, every fetch)
//	otherwise             → I-cache (hit, or miss + main-memory line fill)
//	no cache configured   → main memory directly
package memsim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/loopcache"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Simulation totals, accumulated across every run in the process so run
// reports can state aggregate hierarchy behavior per study.
var (
	mSimRuns    = obs.GetCounter("casa_sim_runs_total")
	mSimFetches = obs.GetCounter("casa_sim_fetches_total")
	mSimHits    = obs.GetCounter("casa_sim_cache_hits_total")
	mSimMisses  = obs.GetCounter("casa_sim_cache_misses_total")
	mSimSPM     = obs.GetCounter("casa_sim_spm_accesses_total")
	mSimEvicts  = obs.GetCounter("casa_sim_cache_evictions_total")
)

// Config selects the hierarchy for one simulation run.
type Config struct {
	// Cache configures the L1 I-cache; SizeBytes == 0 disables it and
	// sends cache-path fetches straight to main memory.
	Cache cache.Config
	// L2 configures an optional second-level I-cache behind the L1
	// (SizeBytes == 0 disables it). Per the paper's §4 remark, the
	// allocator needs no changes for it — this exists to verify that
	// claim.
	L2 cache.Config
	// LoopCache, when non-nil, routes fetches matching its regions to the
	// loop-cache array and charges the controller on every fetch.
	LoopCache *loopcache.Controller
	// Cost is the per-event energy model.
	Cost energy.CostModel
	// TrackConflicts enables per-pair conflict attribution (m_ij), needed
	// when profiling for the conflict graph. It costs a map update per
	// conflict miss.
	TrackConflicts bool
	// KeepCache retains the final L1 state on the Result so callers can
	// dump per-set residency and statistics after the run.
	KeepCache bool
	// Timing overrides the default fetch-latency model (nil = defaults).
	Timing *Timing
}

// Timing is the fetch-latency model (cycles per event). On-chip SRAMs
// (scratchpad, loop cache, cache hit) take one cycle; a miss stalls for
// the off-chip burst setup plus per-word transfer of the line fill.
type Timing struct {
	// SPM is the scratchpad access latency.
	SPM int64
	// LoopCache is the loop-cache access latency.
	LoopCache int64
	// CacheHit is the I-cache hit latency.
	CacheHit int64
	// L2Hit is the second-level probe latency paid on an L1 miss that the
	// L2 serves.
	L2Hit int64
	// MissSetup is the off-chip burst setup penalty on a miss.
	MissSetup int64
	// MissPerWord is the per-32-bit-word transfer penalty of a line fill
	// (and of a direct main-memory fetch).
	MissPerWord int64
}

// DefaultTiming models an ARM7-class board: single-cycle on-chip SRAMs, a
// 4-cycle burst setup and 2 wait states per transferred word.
func DefaultTiming() Timing {
	return Timing{SPM: 1, LoopCache: 1, CacheHit: 1, L2Hit: 4, MissSetup: 4, MissPerWord: 2}
}

// MOStats aggregates per-memory-object counts.
type MOStats struct {
	// Fetches is the object's total instruction fetches (f_i).
	Fetches int64
	// SPM counts fetches served by the scratchpad.
	SPM int64
	// LoopCache counts fetches served by the loop cache.
	LoopCache int64
	// Hits and Misses count the object's I-cache outcomes.
	Hits   int64
	Misses int64
}

// Energy aggregates per-component energy in nanojoules.
type Energy struct {
	SPM                 float64
	CacheHits           float64
	CacheMisses         float64
	LoopCache           float64
	LoopCacheController float64
	MainMemory          float64
}

// Total sums all components.
func (e Energy) Total() float64 {
	return e.SPM + e.CacheHits + e.CacheMisses + e.LoopCache + e.LoopCacheController + e.MainMemory
}

// ConflictKey identifies a directed conflict pair: Victim missed because
// Evictor replaced its line.
type ConflictKey struct {
	// Victim is the memory object whose miss is being attributed (x_i).
	Victim int
	// Evictor is the object whose line occupied the victim's slot (x_j).
	Evictor int
}

// Result is the outcome of one simulation run.
type Result struct {
	// Fetches is the total instruction fetch count.
	Fetches int64
	// SPMAccesses counts fetches served by the scratchpad.
	SPMAccesses int64
	// LoopCacheAccesses counts fetches served by the loop cache.
	LoopCacheAccesses int64
	// CacheAccesses counts fetches that went to the I-cache.
	CacheAccesses int64
	// CacheHits and CacheMisses split CacheAccesses.
	CacheHits   int64
	CacheMisses int64
	// L2Accesses, L2Hits and L2Misses describe the optional second level
	// (an L2 access happens exactly once per L1 miss).
	L2Accesses int64
	L2Hits     int64
	L2Misses   int64
	// ColdMisses counts misses that filled an invalid line (no victim).
	ColdMisses int64
	// ConflictMisses counts misses that evicted a valid line.
	ConflictMisses int64
	// MainMemoryFetches counts direct main-memory fetches (no cache).
	MainMemoryFetches int64
	// PerMO holds per-object statistics, indexed by trace ID.
	PerMO []MOStats
	// Conflicts holds m_ij when Config.TrackConflicts is set: the number
	// of misses of Victim caused by Evictor (self-conflicts included).
	Conflicts map[ConflictKey]int64
	// Energy is the per-component energy breakdown (nJ).
	Energy Energy
	// Cycles is the total fetch latency under the timing model — the
	// instruction-memory contribution to execution time.
	Cycles int64
	// Cache is the final L1 state (per-set residency and statistics)
	// when Config.KeepCache was set; nil otherwise.
	Cache *cache.Cache
}

// CyclesPerFetch returns the run's average fetch latency.
func (r *Result) CyclesPerFetch() float64 {
	if r.Fetches == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Fetches)
}

// TotalEnergyNJ returns the run's total energy in nanojoules.
func (r *Result) TotalEnergyNJ() float64 { return r.Energy.Total() }

// TotalEnergyMicroJ returns the run's total energy in microjoules, the
// unit of the paper's Table 1.
func (r *Result) TotalEnergyMicroJ() float64 { return r.Energy.Total() / 1000 }

// Run simulates the program under the given layout and hierarchy.
func Run(prog *ir.Program, lay *layout.Layout, cfg Config, opts ...sim.Option) (*Result, error) {
	res := &Result{PerMO: make([]MOStats, len(lay.Set().Traces))}
	if cfg.TrackConflicts {
		res.Conflicts = make(map[ConflictKey]int64)
	}

	var ic *cache.Cache
	if cfg.Cache.SizeBytes > 0 {
		var err error
		ic, err = cache.New(cfg.Cache)
		if err != nil {
			return nil, fmt.Errorf("memsim: %w", err)
		}
	}
	var l2 *cache.Cache
	if cfg.L2.SizeBytes > 0 {
		if ic == nil {
			return nil, fmt.Errorf("memsim: L2 configured without an L1")
		}
		var err error
		l2, err = cache.New(cfg.L2)
		if err != nil {
			return nil, fmt.Errorf("memsim: L2: %w", err)
		}
	}
	lc := cfg.LoopCache
	cost := cfg.Cost
	timing := DefaultTiming()
	if cfg.Timing != nil {
		timing = *cfg.Timing
	}
	lineWords := int64(1)
	if cfg.Cache.SizeBytes > 0 {
		lineWords = int64((cfg.Cache.LineBytes + 3) / 4)
	}
	missCycles := timing.CacheHit + timing.MissSetup + timing.MissPerWord*lineWords

	fetch := func(addr uint32, mo int) {
		res.Fetches++
		st := &res.PerMO[mo]
		st.Fetches++

		if lay.IsSPMAddr(addr) {
			res.SPMAccesses++
			st.SPM++
			res.Energy.SPM += cost.SPMAccess
			res.Cycles += timing.SPM
			return
		}
		if lc != nil {
			// The controller arbitrates every non-SPM fetch.
			res.Energy.LoopCacheController += cost.LoopCacheController
			if lc.Match(addr) {
				res.LoopCacheAccesses++
				st.LoopCache++
				res.Energy.LoopCache += cost.LoopCacheHit
				res.Cycles += timing.LoopCache
				return
			}
		}
		if ic == nil {
			res.MainMemoryFetches++
			res.Energy.MainMemory += cost.MainMemoryWord
			res.Cycles += timing.MissSetup + timing.MissPerWord
			return
		}
		res.CacheAccesses++
		r := ic.Access(addr, mo)
		if r.Hit {
			res.CacheHits++
			st.Hits++
			res.Energy.CacheHits += cost.CacheHit
			res.Cycles += timing.CacheHit
			return
		}
		res.CacheMisses++
		st.Misses++
		if l2 != nil {
			// Multi-level: L1 probe+fill, then the L2 transaction.
			res.L2Accesses++
			res.Energy.CacheMisses += cost.CacheHit + cost.CacheFill + cost.L2Probe
			res.Cycles += timing.CacheHit + timing.L2Hit
			if l2.Access(addr, mo).Hit {
				res.L2Hits++
			} else {
				res.L2Misses++
				res.Energy.CacheMisses += cost.L2Fill + cost.MainLine
				res.Cycles += timing.MissSetup + timing.MissPerWord*lineWords
			}
		} else {
			res.Energy.CacheMisses += cost.CacheMiss
			res.Cycles += missCycles
		}
		if r.VictimMO == cache.NoMO {
			res.ColdMisses++
		} else {
			res.ConflictMisses++
			if cfg.TrackConflicts {
				res.Conflicts[ConflictKey{Victim: mo, Evictor: r.VictimMO}]++
			}
		}
	}

	// With default run limits the fetch stream depends only on (program,
	// layout), so replay the memoized recording instead of re-executing
	// the interpreter; results are bit-identical either way. Custom run
	// options bypass the cache, as does CASA_STREAM_CACHE=off.
	if len(opts) == 0 && !sim.StreamCacheDisabled() {
		stream, err := sim.CachedStream(prog, lay)
		if err != nil {
			return nil, err
		}
		stream.Replay(sim.FetcherFunc(fetch))
	} else if _, err := sim.Run(prog, lay, sim.FetcherFunc(fetch), opts...); err != nil {
		return nil, err
	}
	if cfg.KeepCache {
		res.Cache = ic
	}
	flushMetrics(res, ic)
	return res, nil
}

// flushMetrics records the run's totals into the default registry — once
// per run, at the end, so the per-fetch path stays metric-free.
func flushMetrics(res *Result, ic *cache.Cache) {
	mSimRuns.Inc()
	mSimFetches.Add(res.Fetches)
	mSimHits.Add(res.CacheHits)
	mSimMisses.Add(res.CacheMisses)
	mSimSPM.Add(res.SPMAccesses)
	if ic != nil {
		mSimEvicts.Add(ic.TotalStats().Evictions)
	}
}
