package memsim

// Differential validation of the line-granular trace-replay engine
// against the instruction-granular reference: both engines must produce
// bit-identical Results — every counter, per-MO split, conflict edge,
// per-set cache statistic and (since energy derives from the counters)
// every float — on a deterministic battery and on fuzz-generated
// programs × layouts × cache configurations.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/loopcache"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runEngines runs the same (program, layout, hierarchy) through the
// reference and the trace-replay engine and returns both results with
// the final cache state retained.
func runEngines(t testing.TB, p *ir.Program, lay *layout.Layout, cfg Config) (ref, got *Result) {
	t.Helper()
	refCfg := cfg
	refCfg.Reference = true
	refCfg.KeepCache = true
	repCfg := cfg
	repCfg.Reference = false
	repCfg.KeepCache = true
	var err error
	if ref, err = Run(p, lay, refCfg); err != nil {
		t.Fatalf("reference Run: %v", err)
	}
	if got, err = Run(p, lay, repCfg); err != nil {
		t.Fatalf("replay Run: %v", err)
	}
	return ref, got
}

// diffResults asserts the replay result is bit-identical to the
// reference result.
func diffResults(t testing.TB, ref, got *Result) {
	t.Helper()
	counters := []struct {
		name     string
		ref, got int64
	}{
		{"Fetches", ref.Fetches, got.Fetches},
		{"SPMAccesses", ref.SPMAccesses, got.SPMAccesses},
		{"LoopCacheAccesses", ref.LoopCacheAccesses, got.LoopCacheAccesses},
		{"CacheAccesses", ref.CacheAccesses, got.CacheAccesses},
		{"CacheHits", ref.CacheHits, got.CacheHits},
		{"CacheMisses", ref.CacheMisses, got.CacheMisses},
		{"L2Accesses", ref.L2Accesses, got.L2Accesses},
		{"L2Hits", ref.L2Hits, got.L2Hits},
		{"L2Misses", ref.L2Misses, got.L2Misses},
		{"ColdMisses", ref.ColdMisses, got.ColdMisses},
		{"ConflictMisses", ref.ConflictMisses, got.ConflictMisses},
		{"MainMemoryFetches", ref.MainMemoryFetches, got.MainMemoryFetches},
		{"Cycles", ref.Cycles, got.Cycles},
	}
	for _, c := range counters {
		if c.ref != c.got {
			t.Errorf("%s: reference %d, replay %d", c.name, c.ref, c.got)
		}
	}
	if len(ref.PerMO) != len(got.PerMO) {
		t.Fatalf("PerMO length: reference %d, replay %d", len(ref.PerMO), len(got.PerMO))
	}
	for i := range ref.PerMO {
		if ref.PerMO[i] != got.PerMO[i] {
			t.Errorf("PerMO[%d]: reference %+v, replay %+v", i, ref.PerMO[i], got.PerMO[i])
		}
	}
	if len(ref.Conflicts) != len(got.Conflicts) {
		t.Errorf("Conflicts size: reference %d, replay %d", len(ref.Conflicts), len(got.Conflicts))
	}
	for k, v := range ref.Conflicts {
		if got.Conflicts[k] != v {
			t.Errorf("Conflicts[%+v]: reference %d, replay %d", k, v, got.Conflicts[k])
		}
	}
	for k, v := range got.Conflicts {
		if _, ok := ref.Conflicts[k]; !ok {
			t.Errorf("Conflicts[%+v]: replay-only edge with weight %d", k, v)
		}
	}
	// Energy is derived from the counters, so equality must be exact,
	// not approximate.
	if ref.Energy != got.Energy {
		t.Errorf("Energy: reference %+v, replay %+v", ref.Energy, got.Energy)
	}
	// Final cache state: per-set residency, owners and statistics.
	if (ref.Cache == nil) != (got.Cache == nil) {
		t.Fatalf("KeepCache: reference kept=%v, replay kept=%v", ref.Cache != nil, got.Cache != nil)
	}
	if ref.Cache != nil {
		var rb, gb bytes.Buffer
		if err := ref.Cache.DumpState(&rb); err != nil {
			t.Fatalf("reference DumpState: %v", err)
		}
		if err := got.Cache.DumpState(&gb); err != nil {
			t.Fatalf("replay DumpState: %v", err)
		}
		if rb.String() != gb.String() {
			t.Errorf("final cache state differs:\n--- reference ---\n%s--- replay ---\n%s",
				rb.String(), gb.String())
		}
	}
}

// callFixture builds a program whose caller blocks end in calls, so the
// replay must reconstruct the call stack and charge the caller's
// appended jump to the caller's memory object.
func callFixture(t testing.TB) (*ir.Program, *trace.Set) {
	t.Helper()
	pb := ir.NewProgramBuilder("calls")
	f := pb.Func("main")
	f.Block("entry").ALU(1)
	f.Block("loop").ALU(2).Call("leaf")
	f.Block("after").ALU(1).Branch("loop", "done", ir.Loop{Trips: 9})
	f.Block("done").Return()
	lf := pb.Func("leaf")
	lf.Block("body").Code(5).Branch("body", "out", ir.Loop{Trips: 3})
	lf.Block("out").Return()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p, buildTraces(t, p, trace.Options{MaxBytes: 64, LineBytes: 16})
}

// patternFixture builds a program with irregular branch outcomes, so
// trace RLE cannot collapse the stream into a handful of entries.
func patternFixture(t testing.TB) (*ir.Program, *trace.Set) {
	t.Helper()
	pb := ir.NewProgramBuilder("pattern")
	f := pb.Func("main")
	f.Block("a").Code(3).Branch("c", "b", ir.Pattern{Seq: []bool{true, false, false, true, false}})
	f.Block("b").Code(5).Jump("c")
	f.Block("c").Code(7).Branch("a", "end", ir.Loop{Trips: 60})
	f.Block("end").Return()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p, buildTraces(t, p, trace.Options{MaxBytes: 64, LineBytes: 16})
}

func buildTraces(t testing.TB, p *ir.Program, opt trace.Options) *trace.Set {
	t.Helper()
	prof, err := sim.ProfileProgram(p)
	if err != nil {
		t.Fatalf("ProfileProgram: %v", err)
	}
	set, err := trace.Build(p, prof, opt)
	if err != nil {
		t.Fatalf("trace.Build: %v", err)
	}
	return set
}

// hottestTrace returns the ID of the trace with the most fetches.
func hottestTrace(set *trace.Set) int {
	hot := 0
	for _, tr := range set.Traces {
		if tr.Fetches > set.Traces[hot].Fetches {
			hot = tr.ID
		}
	}
	return hot
}

// hotController preloads the hottest trace's exec range into a
// loop-cache controller sized to the next power of two.
func hotController(t testing.TB, set *trace.Set, lay *layout.Layout) *loopcache.Controller {
	t.Helper()
	hot := hottestTrace(set)
	base, size := lay.ExecRange(hot)
	lcSize := 16
	for lcSize < size {
		lcSize *= 2
	}
	ctrl, err := loopcache.NewController(
		loopcache.Config{SizeBytes: lcSize, MaxRegions: 4},
		[]loopcache.Region{{Start: base, End: base + uint32(size), Name: "hot"}},
	)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	return ctrl
}

func TestReplayMatchesReferenceBattery(t *testing.T) {
	programs := []struct {
		name string
		make func(testing.TB) (*ir.Program, *trace.Set)
	}{
		{"thrash", func(tb testing.TB) (*ir.Program, *trace.Set) { return thrashFixture(tb.(*testing.T)) }},
		{"calls", callFixture},
		{"pattern", patternFixture},
	}
	layouts := []struct {
		name  string
		alloc bool // allocate the hottest trace
		opt   layout.Options
	}{
		{"no-spm", false, layout.Options{}},
		{"copy-spm", true, layout.Options{Mode: layout.Copy, SPMSize: 128}},
		{"move-spm", true, layout.Options{Mode: layout.Move, SPMSize: 128}},
		// Window above the code image, so cache-path runs are capped from
		// below as well as served from inside.
		{"spm-above", true, layout.Options{Mode: layout.Copy, SPMSize: 128,
			SPMBase: layout.DefaultMainBase + 1<<20}},
	}
	hierarchies := []struct {
		name  string
		l1    cache.Config
		l2    cache.Config
		useLC bool
	}{
		{name: "dm-64", l1: cache.Config{SizeBytes: 64, LineBytes: 16, Assoc: 1}},
		{name: "2way-lru", l1: cache.Config{SizeBytes: 128, LineBytes: 16, Assoc: 2}},
		{name: "2way-fifo", l1: cache.Config{SizeBytes: 128, LineBytes: 16, Assoc: 2, Replacement: cache.FIFO}},
		{name: "4way-random", l1: cache.Config{SizeBytes: 128, LineBytes: 8, Assoc: 4, Replacement: cache.Random, Seed: 0xC0FFEE}},
		{name: "word-lines", l1: cache.Config{SizeBytes: 64, LineBytes: 4, Assoc: 2}},
		{name: "no-cache"},
		{name: "l2", l1: cache.Config{SizeBytes: 64, LineBytes: 16, Assoc: 1},
			l2: cache.Config{SizeBytes: 512, LineBytes: 16, Assoc: 2}},
		{name: "loop-cache", l1: cache.Config{SizeBytes: 64, LineBytes: 16, Assoc: 1}, useLC: true},
	}
	for _, pc := range programs {
		p, set := pc.make(t)
		for _, lc := range layouts {
			var alloc []bool
			if lc.alloc {
				alloc = make([]bool, len(set.Traces))
				alloc[hottestTrace(set)] = true
			}
			lay := mustLayout(t, set, alloc, lc.opt)
			for _, hc := range hierarchies {
				t.Run(fmt.Sprintf("%s/%s/%s", pc.name, lc.name, hc.name), func(t *testing.T) {
					cfg := Config{
						Cache:          hc.l1,
						L2:             hc.l2,
						Cost:           costFor(t, hc.l1, lc.opt.SPMSize),
						TrackConflicts: true,
					}
					if hc.useLC {
						cfg.LoopCache = hotController(t, set, lay)
					}
					ref, got := runEngines(t, p, lay, cfg)
					diffResults(t, ref, got)
				})
			}
		}
	}
}

// fuzzReader deals deterministic bytes off the fuzz input, yielding
// zeros once exhausted.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// fuzzProgram derives a small, always-terminating program from the fuzz
// input: a chain of blocks with fall-throughs, bounded backward loops,
// pattern-driven forward branches, forward jumps and leaf calls.
// Backward edges only ever carry ir.Loop behaviors (bounded consecutive
// takens), so every generated program halts.
func fuzzProgram(fz *fuzzReader) (*ir.Program, error) {
	pb := ir.NewProgramBuilder("fuzz")
	n := 2 + int(fz.byte()%6)
	hasLeaf := fz.byte()%2 == 0
	labels := make([]string, n+1)
	for i := 0; i < n; i++ {
		labels[i] = fmt.Sprintf("b%d", i)
	}
	labels[n] = "end"
	f := pb.Func("main")
	for i := 0; i < n; i++ {
		bb := f.Block(labels[i]).Code(1 + int(fz.byte()%12))
		forward := func() string {
			return labels[i+1+int(fz.byte())%(n-i)]
		}
		switch fz.byte() % 6 {
		case 0, 1: // fall through
		case 2: // bounded backward loop
			bb.Branch(labels[int(fz.byte())%(i+1)], labels[i+1], ir.Loop{Trips: 1 + int(fz.byte()%7)})
		case 3: // pattern-driven forward branch
			seq := make([]bool, 1+fz.byte()%6)
			for k := range seq {
				seq[k] = fz.byte()%2 == 0
			}
			bb.Branch(forward(), labels[i+1], ir.Pattern{Seq: seq})
		case 4: // forward jump
			bb.Jump(forward())
		case 5:
			if hasLeaf {
				bb.Call("leaf") // resumes at the next block
			}
		}
	}
	f.Block("end").ALU(1).Return()
	if hasLeaf {
		lf := pb.Func("leaf")
		lf.Block("body").Code(1+int(fz.byte()%9)).
			Branch("body", "out", ir.Loop{Trips: 1 + int(fz.byte()%5)})
		lf.Block("out").Return()
	}
	return pb.Build()
}

// FuzzReplayMatchesReference cross-checks the two engines on random
// programs, trace partitions, scratchpad layouts and cache geometries.
func FuzzReplayMatchesReference(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("casa"))
	f.Add([]byte{7, 1, 3, 9, 2, 5, 8, 4, 6, 0, 11, 13, 17, 19, 23, 29, 31, 37})
	f.Add([]byte{255, 254, 253, 3, 128, 64, 32, 16, 8, 4, 2, 1, 0, 255, 127, 63, 200, 100, 50, 25})
	f.Add([]byte{5, 0, 42, 2, 1, 4, 3, 2, 1, 0, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		fz := &fuzzReader{data: data}
		p, err := fuzzProgram(fz)
		if err != nil {
			t.Skipf("unbuildable program: %v", err)
		}
		set := buildTraces(t, p, trace.Options{
			MaxBytes:  16 << (fz.byte() % 4),
			LineBytes: 4 << (fz.byte() % 3),
		})

		opt := layout.Options{SPMSize: 64 << (fz.byte() % 3)}
		if fz.byte()%2 == 0 {
			opt.Mode = layout.Move
		}
		if fz.byte()%3 == 0 {
			opt.SPMBase = layout.DefaultMainBase + 1<<20
		}
		alloc := make([]bool, len(set.Traces))
		for i := range alloc {
			alloc[i] = fz.byte()%3 == 0
		}
		lay, err := layout.New(set, alloc, opt)
		if err != nil {
			// Allocation overflowed the window; retry unallocated.
			lay = mustLayout(t, set, nil, opt)
		}

		cfg := Config{TrackConflicts: true}
		if fz.byte()%8 != 0 {
			line := 4 << (fz.byte() % 3)
			assoc := 1 << (fz.byte() % 3)
			size := 32 << (fz.byte() % 5)
			if size < line*assoc {
				size = line * assoc
			}
			cfg.Cache = cache.Config{
				SizeBytes:   size,
				LineBytes:   line,
				Assoc:       assoc,
				Replacement: cache.Policy(fz.byte() % 3),
				Seed:        uint64(fz.byte()),
			}
			if fz.byte()%3 == 0 {
				cfg.L2 = cache.Config{SizeBytes: size * 4, LineBytes: line, Assoc: 2}
			}
			if fz.byte()%4 == 0 {
				cfg.LoopCache = hotController(t, set, lay)
			}
		}
		cfg.Cost = costFor(t, cfg.Cache, opt.SPMSize)

		ref, got := runEngines(t, p, lay, cfg)
		diffResults(t, ref, got)
	})
}
