package ilp

import "math"

// Factored-basis revised dual simplex — the incremental-mode node
// engine. Same algorithm as rsx (basis.go): persistent basis across the
// branch & bound tree, bound-flip dual repair, bounded dual ratio test.
// What changes is the representation of the basis inverse.
//
// rsx keeps B⁻¹ as a dense m×m matrix and pays O(m²) per pivot to
// update it (plus O(m²) computeXB). In the CASA formulation almost all
// basic columns are singletons — slacks and linearization L's touch one
// row each — so the basis is, up to permutation, block upper triangular
//
//	P·B·Q = [ U  F ]   U: triangular, from peeled singleton columns
//	        [ 0  G ]   G: dense k×k "bump" of the rest (k ≪ m)
//
// (measured on the fig4 grid: k ≈ 105 of m = 422 at SPM 128, k ≈ 23 on
// average at SPM 512). fsx keeps that factorization of a basis snapshot
// B0 plus a product-form eta file for the pivots since:
//
//	B⁻¹ = E_t ··· E_1 · B0⁻¹
//
// FTRAN/BTRAN cost O(t·m + k² + nnz); a pivot appends one eta in O(m)
// instead of updating a dense inverse in O(m²); refactorization peels
// the triangle in O(nnz) and inverts only the bump in O(k³) instead of
// O(m³).
//
// fsx also honors an objective limit: at every dual-feasible iterate
// the working point minimizes cᵀx over the relaxation that drops the
// basic variables' bounds, so cᵀx is a valid lower bound on the LP
// optimum (weak duality). When a caller-installed limit is exceeded the
// node cannot beat the known cutoff and solve returns stObjLimit
// immediately, mid-LP.

const (
	// fsxRefactorEvery bounds the eta file: beyond this, the O(t·m)
	// transform cost outgrows the O(k³) refactorization it avoids.
	fsxRefactorEvery = 64
)

// etaRec is one product-form update: the FTRAN'd entering column (held
// sparse, ascending positions) and the pivot row r at the time of the
// pivot (piv equals the column's entry at r). Storing only nonzeros
// changes nothing numerically — the dense form skips zeros too — but
// the eta file is applied twice per pivot over its whole length, so its
// density is the engine's dominant cost.
type etaRec struct {
	r   int32
	piv float64
	idx []int32
	val []float64
}

type fsx struct {
	n, m int // structural columns, rows

	cols   []spCol   // n structural + m slack columns
	c      []float64 // minimization-space costs, len n+m
	b      []float64 // row right-hand sides
	lo, hi []float64 // len n+m; structural part overwritten per node

	basis  []int     // basic column per position (position i ↔ row slot i)
	status []int8    // per column
	xB     []float64 // basic variable values, by position
	d      []float64 // reduced costs (0 for basic columns)

	// B0 factorization (basis snapshot at the last refactorization).
	factCol     []int32   // basic model column per position at snapshot
	peelPos     []int32   // peeled positions, in peel order
	peelRow     []int32   // row assigned to each peeled position
	peelDiag    []float64 // that column's coefficient in its row
	bumpPos     []int32   // unpeeled positions (bump columns), position order
	bumpRow     []int32   // uncovered rows (bump rows), row order
	rowAssigned []int32   // row → peel index, -1 for bump rows
	rowBump     []int32   // row → bump row index, -1 for assigned rows
	ginv        []float64 // dense k×k inverse of the bump block
	k           int

	etas []etaRec // truncated, not freed, on refactor; idx/val reuse capacity

	// scratch
	alpha []float64 // pivot row in nonbasic columns, len n+m
	rho   []float64 // BTRAN'd unit row, row space, len m
	w     []float64 // FTRAN'd entering column, position space, len m
	pv    []float64 // position-space scratch, len m
	rv    []float64 // row-space scratch, len m
	bs    []float64 // bump scratch, len m

	costed []int32 // columns with c != 0, for objective evaluation

	objLimit     float64
	iters        int // lifetime pivot count
	sinceRefresh int
	tol          float64
}

// newFSX builds the factored engine for md, or returns nil when some
// column cannot be placed dual-feasibly at a finite bound (same
// condition as newRSX; such models take the dense path).
func newFSX(md *Model, tol float64) *fsx {
	if tol <= 0 {
		tol = defaultTol
	}
	n, m := md.NumVars(), len(md.cons)
	tot := n + m
	e := &fsx{
		n: n, m: m,
		cols: make([]spCol, tot),
		c:    make([]float64, tot),
		b:    make([]float64, m),
		lo:   make([]float64, tot),
		hi:   make([]float64, tot),

		basis:  make([]int, m),
		status: make([]int8, tot),
		xB:     make([]float64, m),
		d:      make([]float64, tot),

		factCol:     make([]int32, m),
		rowAssigned: make([]int32, m),
		rowBump:     make([]int32, m),

		alpha: make([]float64, tot),
		rho:   make([]float64, m),
		w:     make([]float64, m),
		pv:    make([]float64, m),
		rv:    make([]float64, m),
		bs:    make([]float64, m),

		objLimit: math.Inf(1),
		tol:      tol,
	}
	sign := 1.0
	if md.sense == Maximize {
		sign = -1
	}
	for _, t := range md.obj.Terms {
		e.c[t.Var] += sign * t.Coef
	}
	copy(e.lo, md.lo)
	copy(e.hi, md.hi)

	tmp := make([]float64, n)
	var touched []int
	for i, con := range md.cons {
		e.b[i] = con.RHS - con.Expr.Const
		touched = touched[:0]
		for _, t := range con.Expr.Terms {
			if tmp[t.Var] == 0 {
				touched = append(touched, int(t.Var))
			}
			tmp[t.Var] += t.Coef
		}
		for _, j := range touched {
			if v := tmp[j]; v != 0 {
				e.cols[j].rows = append(e.cols[j].rows, int32(i))
				e.cols[j].vals = append(e.cols[j].vals, v)
			}
			tmp[j] = 0
		}
		s := n + i
		e.cols[s] = spCol{rows: []int32{int32(i)}, vals: []float64{1}}
		switch con.Rel {
		case LE:
			e.lo[s], e.hi[s] = 0, math.Inf(1)
		case GE:
			e.lo[s], e.hi[s] = math.Inf(-1), 0
		case EQ:
			e.lo[s], e.hi[s] = 0, 0
		}
	}
	for j := 0; j < tot; j++ {
		if e.c[j] != 0 {
			e.costed = append(e.costed, int32(j))
		}
	}
	if !e.reset() {
		return nil
	}
	return e
}

// nodeEngine interface.
func (e *fsx) iterCount() int        { return e.iters }
func (e *fsx) dims() (n, m int)      { return e.n, e.m }
func (e *fsx) setObjLimit(z float64) { e.objLimit = z }

// factorStats reports the current factorization shape for diagnostics:
// peeled singleton columns, dense bump dimension, and eta-file depth
// since the last refactorization.
func (e *fsx) factorStats() (peeled, bumpK, etaDepth int) {
	return len(e.peelPos), e.k, len(e.etas)
}

// reducedCost returns the current reduced cost of column j (valid after
// a solve that ended Optimal; 0 for basic columns).
func (e *fsx) reducedCost(j int) float64 { return e.d[j] }

// installBasis replaces the current basis with the given set of basic
// columns (structural and slack indices; exactly one per row), places
// nonbasic structural columns per atUpper (falling back to the
// crash-basis placement rule when the requested bound is infinite),
// refactors, and repairs dual feasibility: wrong-sign nonbasics with a
// finite opposite bound are flipped (free — duals are unchanged), the
// rest are pivoted into the basis under a bounded budget. On any
// failure — singular factorization, an unplaceable column, or residual
// dual infeasibility after the budget — the engine resets to the cold
// crash basis and reports ok=false; pivots counts the repair pivots
// performed either way.
func (e *fsx) installBasis(basic []int, atUpper []bool) (pivots int, ok bool) {
	tot := e.n + e.m
	if len(basic) != e.m {
		return 0, false
	}
	inB := make([]bool, tot)
	for _, j := range basic {
		if j < 0 || j >= tot || inB[j] {
			return 0, false
		}
		inB[j] = true
	}
	// A transferred basis is usually only partially shared — columns the
	// donor had and this model lacks were already replaced by slacks, and
	// that substitution can leave the set rank-deficient. Repair it to
	// full rank before factoring; unrepairable sets fall back cold.
	basic = e.repairBasic(basic)
	if basic == nil {
		return 0, false
	}
	for j := range inB {
		inB[j] = false
	}
	for _, j := range basic {
		inB[j] = true
	}
	for j := 0; j < e.n; j++ {
		if inB[j] {
			continue
		}
		switch {
		case atUpper[j] && !math.IsInf(e.hi[j], 1):
			e.status[j] = nbUpper
		case !math.IsInf(e.lo[j], -1):
			e.status[j] = nbLower
		case !math.IsInf(e.hi[j], 1):
			e.status[j] = nbUpper
		default:
			return 0, false
		}
	}
	for i := 0; i < e.m; i++ {
		s := e.n + i
		if inB[s] {
			continue
		}
		// A slack's nonbasic bound is forced by its relation: LE/EQ rest
		// at 0 = lo, GE at 0 = hi.
		if math.IsInf(e.hi[s], 1) {
			e.status[s] = nbLower
		} else {
			e.status[s] = nbUpper
		}
	}
	for i, j := range basic {
		e.basis[i] = j
		e.status[j] = inBasis
	}
	if !e.refactor() {
		return 0, e.failInstall()
	}
	e.computeDuals()

	// Dual repair. Budget covers the pathological case where many donor
	// columns price wrong under this model; in the intended transfers
	// (identical structure, different RHS) duals are independent of b and
	// the donor basis arrives dual feasible, so this loop does nothing.
	budget := e.m/4 + 16
	for {
		q, worst := -1, dualTol
		for j := 0; j < tot; j++ {
			if e.status[j] == inBasis || e.hi[j]-e.lo[j] < 1e-9 {
				continue
			}
			d := e.d[j]
			if e.status[j] == nbLower && d < -worst {
				// Flip to the upper bound when finite; duals unchanged.
				if !math.IsInf(e.hi[j], 1) {
					e.status[j] = nbUpper
					continue
				}
				q, worst = j, -d
			} else if e.status[j] == nbUpper && d > worst {
				if !math.IsInf(e.lo[j], -1) {
					e.status[j] = nbLower
					continue
				}
				q, worst = j, d
			}
		}
		if q < 0 {
			break // dual feasible
		}
		if pivots >= budget {
			return pivots, e.failInstall()
		}
		// Pivot q in at the largest-magnitude row whose leaving column can
		// rest at a finite bound; the recomputed duals zero d[q].
		e.ftranCol(q)
		r, best := -1, 1e-8
		for i := 0; i < e.m; i++ {
			lb := e.basis[i]
			if math.IsInf(e.lo[lb], -1) && math.IsInf(e.hi[lb], 1) {
				continue
			}
			if v := math.Abs(e.w[i]); v > best {
				r, best = i, v
			}
		}
		if r < 0 {
			return pivots, e.failInstall()
		}
		lb := e.basis[r]
		if !math.IsInf(e.lo[lb], -1) {
			e.status[lb] = nbLower
		} else {
			e.status[lb] = nbUpper
		}
		e.status[q] = inBasis
		e.basis[r] = q
		e.pushEta(r, e.w[r])
		pivots++
		e.iters++
		e.sinceRefresh++
		if e.sinceRefresh >= fsxRefactorEvery {
			if !e.refactor() {
				return pivots, e.failInstall()
			}
		}
		e.computeDuals()
	}
	e.computeXB()
	return pivots, true
}

// repairBasic makes a proposed basic-column set nonsingular: dense
// Gaussian elimination with partial pivoting ranks the proposed columns
// in order, and every column that finds no pivot (it is dependent on
// the columns before it, or empty) is replaced by the slack of a
// pivotless row — a unit column independent of everything chosen so
// far. Returns nil when no full basis results (a replacement slack was
// already in the proposed set, which cannot happen for sets produced by
// mapHotBasis: a basic slack's row is covered, so its slack is never a
// replacement candidate). O(m³) dense on the CASA models' row counts —
// noise against the branch & bound it warm-starts.
func (e *fsx) repairBasic(basic []int) []int {
	m := e.m
	a := make([]float64, m*m)
	for c, j := range basic {
		col := &e.cols[j]
		for u, r := range col.rows {
			a[int(r)*m+c] = col.vals[u]
		}
	}
	rowUsed := make([]bool, m)
	dependent := make([]bool, m)
	for c := 0; c < m; c++ {
		pr, best := -1, 1e-9
		for r := 0; r < m; r++ {
			if !rowUsed[r] {
				if v := math.Abs(a[r*m+c]); v > best {
					pr, best = r, v
				}
			}
		}
		if pr < 0 {
			dependent[c] = true
			continue
		}
		rowUsed[pr] = true
		piv := a[pr*m+c]
		for c2 := c + 1; c2 < m; c2++ {
			f := a[pr*m+c2] / piv
			if f == 0 {
				continue
			}
			for r := 0; r < m; r++ {
				if !rowUsed[r] {
					a[r*m+c2] -= f * a[r*m+c]
				}
			}
			a[pr*m+c2] = 0
		}
	}
	out := make([]int, 0, m)
	inOut := make([]bool, e.n+m)
	for c, j := range basic {
		if !dependent[c] {
			out = append(out, j)
			inOut[j] = true
		}
	}
	for r := 0; r < m && len(out) < m; r++ {
		if !rowUsed[r] && !inOut[e.n+r] {
			out = append(out, e.n+r)
			inOut[e.n+r] = true
		}
	}
	if len(out) != m {
		return nil
	}
	return out
}

// failInstall restores the cold crash basis after a failed installBasis
// and reports false for its caller's convenience. reset cannot fail
// here: installBasis runs before any node tightens bounds, so the
// engine's bounds are the ones newFSX already crash-placed once.
func (e *fsx) failInstall() bool {
	e.reset()
	return false
}

// reset installs the all-slack basis (placement rules identical to
// rsx.reset) and the trivial factorization. Reports false when a
// required bound is infinite.
func (e *fsx) reset() bool {
	for j := 0; j < e.n; j++ {
		switch {
		case e.c[j] > e.tol:
			if math.IsInf(e.lo[j], -1) {
				return false
			}
			e.status[j] = nbLower
		case e.c[j] < -e.tol:
			if math.IsInf(e.hi[j], 1) {
				return false
			}
			e.status[j] = nbUpper
		default:
			if !math.IsInf(e.lo[j], -1) {
				e.status[j] = nbLower
			} else if !math.IsInf(e.hi[j], 1) {
				e.status[j] = nbUpper
			} else {
				return false
			}
		}
	}
	for i := 0; i < e.m; i++ {
		e.basis[i] = e.n + i
		e.status[e.n+i] = inBasis
	}
	copy(e.d, e.c) // slack basis: y = 0
	for i := 0; i < e.m; i++ {
		e.d[e.n+i] = 0
	}
	// An all-slack basis peels completely: k = 0, no etas.
	if !e.refactor() {
		return false // cannot happen: slack columns are unit singletons
	}
	return true
}

// setBounds installs a node's structural bounds.
func (e *fsx) setBounds(lo, hi []float64) {
	copy(e.lo[:e.n], lo)
	copy(e.hi[:e.n], hi)
}

// nbValue returns the resting value of a nonbasic column.
func (e *fsx) nbValue(j int) float64 {
	if e.status[j] == nbUpper {
		return e.hi[j]
	}
	return e.lo[j]
}

// releaseEtas empties the eta file. The records (and their idx/val
// backing arrays) stay in the slice's capacity for reuse by pushEta.
func (e *fsx) releaseEtas() {
	e.etas = e.etas[:0]
}

// pushEta appends the current FTRAN'd column e.w as a product-form
// update, compressing it to its nonzeros.
func (e *fsx) pushEta(r int, piv float64) {
	var et *etaRec
	if len(e.etas) < cap(e.etas) {
		e.etas = e.etas[:len(e.etas)+1]
		et = &e.etas[len(e.etas)-1]
		et.idx, et.val = et.idx[:0], et.val[:0]
	} else {
		e.etas = append(e.etas, etaRec{})
		et = &e.etas[len(e.etas)-1]
	}
	et.r, et.piv = int32(r), piv
	for j, wj := range e.w {
		if wj != 0 {
			et.idx = append(et.idx, int32(j))
			et.val = append(et.val, wj)
		}
	}
}

// refactor snapshots the current basis and rebuilds the block-triangular
// factorization: repeatedly peel basic columns with exactly one nonzero
// in a still-uncovered row (slacks and L's peel immediately; peeling
// their rows exposes further singletons), then invert the remaining
// bump densely. Reports false on a (numerically) singular bump.
func (e *fsx) refactor() bool {
	m := e.m
	for i := 0; i < m; i++ {
		e.factCol[i] = int32(e.basis[i])
		e.rowAssigned[i] = -1
		e.rowBump[i] = -1
	}
	e.peelPos = e.peelPos[:0]
	e.peelRow = e.peelRow[:0]
	e.peelDiag = e.peelDiag[:0]
	e.bumpPos = e.bumpPos[:0]
	e.bumpRow = e.bumpRow[:0]

	// Per-position count of entries in uncovered rows, and row → positions
	// adjacency over the basic columns.
	cnt := make([]int32, m)
	deg := make([]int32, m)
	for p := 0; p < m; p++ {
		col := &e.cols[e.basis[p]]
		if len(col.rows) == 0 {
			return false // structurally singular
		}
		cnt[p] = int32(len(col.rows))
		for _, r := range col.rows {
			deg[r]++
		}
	}
	rowStart := make([]int32, m+1)
	for r := 0; r < m; r++ {
		rowStart[r+1] = rowStart[r] + deg[r]
	}
	rowPosts := make([]int32, rowStart[m])
	fill := append([]int32(nil), rowStart[:m]...)
	for p := 0; p < m; p++ {
		col := &e.cols[e.basis[p]]
		for _, r := range col.rows {
			rowPosts[fill[r]] = int32(p)
			fill[r]++
		}
	}

	assigned := make([]bool, m)
	covered := make([]bool, m)
	queue := make([]int32, 0, m)
	for p := 0; p < m; p++ {
		if cnt[p] == 1 {
			queue = append(queue, int32(p))
		}
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if assigned[p] || cnt[p] != 1 {
			continue
		}
		col := &e.cols[e.basis[p]]
		pr, pv := int32(-1), 0.0
		for u, r := range col.rows {
			if !covered[r] {
				pr, pv = r, col.vals[u]
			}
		}
		if pr < 0 || pv == 0 {
			return false
		}
		assigned[p] = true
		covered[pr] = true
		e.rowAssigned[pr] = int32(len(e.peelPos))
		e.peelPos = append(e.peelPos, p)
		e.peelRow = append(e.peelRow, pr)
		e.peelDiag = append(e.peelDiag, pv)
		for u := rowStart[pr]; u < rowStart[pr+1]; u++ {
			p2 := rowPosts[u]
			if !assigned[p2] {
				cnt[p2]--
				if cnt[p2] == 1 {
					queue = append(queue, p2)
				}
			}
		}
	}

	for p := 0; p < m; p++ {
		if !assigned[p] {
			e.bumpPos = append(e.bumpPos, int32(p))
		}
	}
	for r := 0; r < m; r++ {
		if !covered[r] {
			e.rowBump[r] = int32(len(e.bumpRow))
			e.bumpRow = append(e.bumpRow, int32(r))
		}
	}
	k := len(e.bumpPos)
	e.k = k
	if k != len(e.bumpRow) {
		return false // cannot happen: peeling assigns rows 1:1
	}
	if k > 0 {
		// Bump block G[a][b] = coefficient of bump column b in bump row a;
		// invert by Gauss–Jordan with partial pivoting.
		g := make([]float64, k*k)
		for bi, p := range e.bumpPos {
			col := &e.cols[e.basis[p]]
			for u, r := range col.rows {
				if a := e.rowBump[r]; a >= 0 {
					g[int(a)*k+bi] = col.vals[u]
				}
			}
		}
		if cap(e.ginv) < k*k {
			e.ginv = make([]float64, k*k)
		}
		inv := e.ginv[:k*k]
		e.ginv = inv
		for i := range inv {
			inv[i] = 0
		}
		for i := 0; i < k; i++ {
			inv[i*k+i] = 1
		}
		for col := 0; col < k; col++ {
			p, best := -1, 1e-10
			for r := col; r < k; r++ {
				if v := math.Abs(g[r*k+col]); v > best {
					p, best = r, v
				}
			}
			if p < 0 {
				return false
			}
			if p != col {
				gr, gc := g[p*k:(p+1)*k], g[col*k:(col+1)*k]
				for t := 0; t < k; t++ {
					gr[t], gc[t] = gc[t], gr[t]
				}
				ir, ic := inv[p*k:(p+1)*k], inv[col*k:(col+1)*k]
				for t := 0; t < k; t++ {
					ir[t], ic[t] = ic[t], ir[t]
				}
			}
			piv := 1 / g[col*k+col]
			gc, ic := g[col*k:(col+1)*k], inv[col*k:(col+1)*k]
			for t := col; t < k; t++ {
				gc[t] *= piv
			}
			for t := 0; t < k; t++ {
				ic[t] *= piv
			}
			for r := 0; r < k; r++ {
				if r == col {
					continue
				}
				f := g[r*k+col]
				if f == 0 {
					continue
				}
				gr, ir := g[r*k:(r+1)*k], inv[r*k:(r+1)*k]
				for t := col; t < k; t++ {
					gr[t] -= f * gc[t]
				}
				for t := 0; t < k; t++ {
					ir[t] -= f * ic[t]
				}
			}
		}
	}
	e.releaseEtas()
	e.sinceRefresh = 0
	return true
}

// ftranB0 solves B0·out = a. a is a row-space vector (len m, destroyed);
// out is position-space.
func (e *fsx) ftranB0(a, out []float64) {
	k := e.k
	// Bump block first: out_bump = G⁻¹ · a_bump.
	for bi := 0; bi < k; bi++ {
		row := e.ginv[bi*k:]
		s := 0.0
		for ai := 0; ai < k; ai++ {
			s += row[ai] * a[e.bumpRow[ai]]
		}
		e.bs[bi] = s
	}
	for bi := 0; bi < k; bi++ {
		p := e.bumpPos[bi]
		v := e.bs[bi]
		out[p] = v
		if v == 0 {
			continue
		}
		// Subtract the bump column's contribution from assigned rows.
		col := &e.cols[e.factCol[p]]
		for u, r := range col.rows {
			if e.rowAssigned[r] >= 0 {
				a[r] -= col.vals[u] * v
			}
		}
	}
	// Back-substitute the triangle in reverse peel order: a peeled
	// column's off-diagonal entries lie only in rows peeled earlier.
	for t := len(e.peelPos) - 1; t >= 0; t-- {
		p, r := e.peelPos[t], e.peelRow[t]
		x := a[r] / e.peelDiag[t]
		out[p] = x
		if x == 0 {
			continue
		}
		col := &e.cols[e.factCol[p]]
		for u, rr := range col.rows {
			if rr != r {
				a[rr] -= col.vals[u] * x
			}
		}
	}
}

// btranB0 solves zᵀ·B0 = rhoᵀ: rho is position-space, z row-space.
func (e *fsx) btranB0(rho, z []float64) {
	// Triangle forward in peel order.
	for t := 0; t < len(e.peelPos); t++ {
		p, r := e.peelPos[t], e.peelRow[t]
		s := rho[p]
		col := &e.cols[e.factCol[p]]
		for u, rr := range col.rows {
			if rr != r {
				s -= col.vals[u] * z[rr]
			}
		}
		z[r] = s / e.peelDiag[t]
	}
	k := e.k
	for bi := 0; bi < k; bi++ {
		p := e.bumpPos[bi]
		s := rho[p]
		col := &e.cols[e.factCol[p]]
		for u, rr := range col.rows {
			if e.rowAssigned[rr] >= 0 {
				s -= col.vals[u] * z[rr]
			}
		}
		e.bs[bi] = s
	}
	for ai := 0; ai < k; ai++ {
		s := 0.0
		for bi := 0; bi < k; bi++ {
			s += e.bs[bi] * e.ginv[bi*k+ai]
		}
		z[e.bumpRow[ai]] = s
	}
}

// applyEtasFwd maps a position-space column vector through the eta file:
// v ← E_t···E_1·v.
func (e *fsx) applyEtasFwd(v []float64) {
	for i := range e.etas {
		et := &e.etas[i]
		vr := v[et.r] / et.piv
		if vr != 0 {
			for u, j := range et.idx {
				v[j] -= et.val[u] * vr
			}
		}
		v[et.r] = vr
	}
}

// applyEtasRev maps a position-space row vector through the eta file in
// reverse: yᵀ ← yᵀ·E_t···E_1 applied as (((yᵀE_t)E_{t-1})···).
func (e *fsx) applyEtasRev(y []float64) {
	for i := len(e.etas) - 1; i >= 0; i-- {
		et := &e.etas[i]
		dot := 0.0
		for u, j := range et.idx {
			dot += y[j] * et.val[u]
		}
		yr := y[et.r]
		y[et.r] = yr - (dot-yr)/et.piv
	}
}

// btranUnit computes row r of B⁻¹ into e.rho (row space).
func (e *fsx) btranUnit(r int) {
	y := e.pv
	for i := range y {
		y[i] = 0
	}
	y[r] = 1
	e.applyEtasRev(y)
	e.btranB0(y, e.rho)
}

// ftranCol computes B⁻¹·A_q into e.w (position space).
func (e *fsx) ftranCol(q int) {
	a := e.rv
	for i := range a {
		a[i] = 0
	}
	col := &e.cols[q]
	for u, r := range col.rows {
		a[r] = col.vals[u]
	}
	e.ftranB0(a, e.w)
	e.applyEtasFwd(e.w)
}

// computeXB recomputes basic values from the current bounds and
// nonbasic placements: xB = B⁻¹(b − N·x_N).
func (e *fsx) computeXB() {
	r := e.rv
	copy(r, e.b)
	for j := 0; j < e.n+e.m; j++ {
		if e.status[j] == inBasis {
			continue
		}
		v := e.nbValue(j)
		if v == 0 {
			continue
		}
		col := &e.cols[j]
		for u, ri := range col.rows {
			r[ri] -= col.vals[u] * v
		}
	}
	e.ftranB0(r, e.xB)
	e.applyEtasFwd(e.xB)
}

// computeDuals recomputes y = c_B·B⁻¹ and all reduced costs from
// scratch (used after refactorization; pivots maintain d incrementally).
func (e *fsx) computeDuals() {
	y := e.pv
	for i := 0; i < e.m; i++ {
		y[i] = e.c[e.basis[i]]
	}
	e.applyEtasRev(y)
	z := e.rv
	e.btranB0(y, z)
	for j := 0; j < e.n+e.m; j++ {
		if e.status[j] == inBasis {
			e.d[j] = 0
			continue
		}
		col := &e.cols[j]
		s := e.c[j]
		for u, ri := range col.rows {
			s -= z[ri] * col.vals[u]
		}
		e.d[j] = s
	}
}

// refresh refactorizes and recomputes duals and basic values; on a
// singular bump it falls back to a full reset (which installs exact
// slack-basis duals itself). Reports false only when even the reset
// fails.
func (e *fsx) refresh() bool {
	if !e.refactor() {
		if !e.reset() {
			return false
		}
	} else {
		e.computeDuals()
	}
	e.computeXB()
	return true
}

// objValue returns cᵀx of the current working point: basic values plus
// costed nonbasics at their bounds.
func (e *fsx) objValue() float64 {
	z := 0.0
	for i := 0; i < e.m; i++ {
		if cb := e.c[e.basis[i]]; cb != 0 {
			z += cb * e.xB[i]
		}
	}
	for _, j := range e.costed {
		if e.status[j] != inBasis {
			z += e.c[j] * e.nbValue(int(j))
		}
	}
	return z
}

// solve re-optimizes after a bound change; identical contract to
// rsx.solve, plus the objective-limit early stop.
func (e *fsx) solve(maxIter int) Status {
	for j := 0; j < e.n; j++ {
		if e.status[j] == inBasis || e.hi[j]-e.lo[j] < 1e-9 {
			continue
		}
		if e.status[j] == nbLower && e.d[j] < -dualTol {
			if math.IsInf(e.hi[j], 1) {
				if !e.reset() {
					return Aborted
				}
				break
			}
			e.status[j] = nbUpper
		} else if e.status[j] == nbUpper && e.d[j] > dualTol {
			if math.IsInf(e.lo[j], -1) {
				if !e.reset() {
					return Aborted
				}
				break
			}
			e.status[j] = nbLower
		}
	}
	e.computeXB()
	return e.reoptimize(maxIter)
}

// reoptimize runs the dual simplex loop; the linear algebra goes through
// the factored basis, everything else mirrors rsx.reoptimize.
func (e *fsx) reoptimize(maxIter int) Status {
	m, tot := e.m, e.n+e.m
	blandAfter := 200 + 2*m
	limited := !math.IsInf(e.objLimit, 1)
	for it := 0; ; it++ {
		if it > maxIter {
			return Aborted
		}
		if limited && e.objValue() > e.objLimit {
			// Weak duality: the working point's objective is a lower
			// bound on this relaxation's optimum, which already exceeds
			// the caller's limit — no point finishing the LP.
			return stObjLimit
		}
		bland := it > blandAfter

		// Leaving row: worst primal bound violation (Bland: first).
		r, sgn, worst := -1, 1.0, feasTol
		for i := 0; i < m; i++ {
			bj := e.basis[i]
			if v := e.lo[bj] - e.xB[i]; v > worst {
				worst, r, sgn = v, i, -1
			} else if v := e.xB[i] - e.hi[bj]; v > worst {
				worst, r, sgn = v, i, 1
			}
			if r == i && bland {
				break
			}
		}
		if r < 0 {
			return Optimal
		}

		// Pivot row in all nonbasic columns: alpha_j = (B⁻¹)_r · A_j.
		e.btranUnit(r)
		rho := e.rho
		for j := 0; j < tot; j++ {
			if e.status[j] == inBasis {
				continue
			}
			col := &e.cols[j]
			s := 0.0
			for u, ri := range col.rows {
				s += rho[ri] * col.vals[u]
			}
			e.alpha[j] = s
		}

		// Bounded dual ratio test, identical to rsx.
		q, bestRatio, bestAbs := -1, math.Inf(1), 0.0
		for j := 0; j < tot; j++ {
			if e.status[j] == inBasis || e.hi[j]-e.lo[j] < 1e-9 {
				continue
			}
			at := sgn * e.alpha[j]
			if e.status[j] == nbLower {
				if at <= pivTol {
					continue
				}
			} else if at >= -pivTol {
				continue
			}
			ratio := e.d[j] / at
			if ratio < 0 {
				ratio = 0 // reduced-cost drift within tolerance
			}
			if bland {
				if ratio < bestRatio-1e-12 || (ratio <= bestRatio+1e-12 && (q < 0 || j < q)) {
					bestRatio, q = ratio, j
				}
				continue
			}
			if ratio < bestRatio-1e-9 {
				bestRatio, bestAbs, q = ratio, math.Abs(at), j
			} else if ratio <= bestRatio+1e-9 && math.Abs(at) > bestAbs {
				bestRatio, bestAbs, q = math.Min(bestRatio, ratio), math.Abs(at), j
			}
		}
		if q < 0 {
			// No column can repair the violated row: primal infeasible.
			return Infeasible
		}

		// w = B⁻¹·A_q; w[r] equals alpha_q by construction.
		e.ftranCol(q)
		piv := e.w[r]
		if math.Abs(piv) < 1e-10 {
			// Numerically degenerate pivot: refresh and retry.
			if !e.refresh() {
				return Aborted
			}
			continue
		}

		lb := e.basis[r]
		bnd := e.lo[lb]
		if sgn > 0 {
			bnd = e.hi[lb]
		}
		step := (e.xB[r] - bnd) / piv
		for i := 0; i < m; i++ {
			if i != r {
				e.xB[i] -= step * e.w[i]
			}
		}
		e.xB[r] = e.nbValue(q) + step

		// Incremental dual update, identical to rsx.
		theta := e.d[q] / (sgn * piv)
		if theta < 0 {
			theta = 0
		}
		if theta != 0 {
			for j := 0; j < tot; j++ {
				if e.status[j] == inBasis || j == q {
					continue
				}
				if a := e.alpha[j]; a != 0 {
					e.d[j] -= theta * sgn * a
				}
			}
		}
		e.d[q] = 0
		e.d[lb] = -theta * sgn

		e.status[q] = inBasis
		if sgn < 0 {
			e.status[lb] = nbLower
		} else {
			e.status[lb] = nbUpper
		}
		e.basis[r] = q

		// Product-form update: append one eta instead of touching a
		// dense inverse.
		e.pushEta(r, piv)

		e.iters++
		e.sinceRefresh++
		if e.sinceRefresh >= fsxRefactorEvery {
			if !e.refresh() {
				return Aborted
			}
		}
	}
}

// values returns the structural solution vector.
func (e *fsx) values() []float64 {
	x := make([]float64, e.n)
	for j := 0; j < e.n; j++ {
		if e.status[j] != inBasis {
			x[j] = e.nbValue(j)
		}
	}
	for i, bj := range e.basis {
		if bj < e.n {
			x[bj] = e.xB[i]
		}
	}
	return x
}
