package ilp

import (
	"math"
	"os"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Cross-cell incremental solving. Experiment grids solve many CASA
// models that differ in a single parameter; this file holds the pieces
// that let one solve reuse work from a neighbor:
//
//   - IncrementalEnabled gates everything behind CASA_INCREMENTAL
//     (default on; "off"/"0"/"false" restores the legacy path bit for
//     bit — legacy engine, no presolve reuse, no cutoff pruning);
//   - Session caches presolve results keyed on a structure hash of the
//     model, so a structurally identical model (a warm re-solve, a
//     repeated daemon request) skips the reduction fixpoint entirely,
//     and a model that differs only in the capacity row's RHS patches
//     the cached reduction in place;
//   - Options.Cutoff carries a known-feasible objective value
//     transferred from a neighboring cell; solve.go uses it to prune
//     and to stop node LPs early (see the exactness argument there).
//
// Counters: casa_presolve_reuse_total fires on every cache hit;
// casa_ilp_warm_cell_hits_total fires when a solve runs with a
// transferred cutoff (the misses twin is counted by the planner in
// internal/experiments, which knows when no donor was available).

var (
	mWarmCellHits  = obs.GetCounter("casa_ilp_warm_cell_hits_total")
	mPresolveReuse = obs.GetCounter("casa_presolve_reuse_total")
	// mRHSGrownReject counts cached reductions rejected because the new
	// model's capacity RHS GREW past the cached one. Shrinking is sound
	// to patch (the feasible region only shrinks, so every recorded
	// reduction still holds); growing is not — a row proven redundant
	// under capacity C may bind under C' > C — so such transfers solve
	// cold, explicitly and counted, instead of leaning on the solver's
	// safety-net re-solve to catch an unsound patch.
	mRHSGrownReject = obs.GetCounter("casa_ilp_rhs_grown_rejects_total")
)

// IncrementalEnabled reports whether the cross-cell incremental layer is
// active. It is on unless CASA_INCREMENTAL is set to "off", "0" or
// "false". Read per call so tests can toggle it with t.Setenv.
func IncrementalEnabled() bool {
	switch strings.ToLower(os.Getenv("CASA_INCREMENTAL")) {
	case "off", "0", "false":
		return false
	}
	return true
}

// capacityRowName is the constraint the Session treats as the patchable
// right-hand side: core.BuildModel names the scratchpad-capacity row
// this, and two cells that differ only in SPM capacity differ only in
// its RHS. Models without such a row are still cached, but reuse then
// requires an exact hash match.
const capacityRowName = "spm_capacity"

// Session caches presolve results across Solve calls. One Session is
// shared per experiment suite (and per server); it is safe for
// concurrent use. Cached reductions are immutable and may be shared by
// concurrent solves.
type Session struct {
	mu  sync.Mutex
	pre map[uint64]*sessionEntry
}

// NewSession returns an empty presolve-reuse cache.
func NewSession() *Session {
	return &Session{pre: make(map[uint64]*sessionEntry)}
}

type sessionEntry struct {
	// capRHS is the effective capacity-row RHS (RHS − Expr.Const) the
	// cached reduction was computed under.
	capRHS float64
	pr     *presolveResult
	// nVars/nCons guard against (astronomically unlikely) hash
	// collisions with a cheap structural cross-check.
	nVars, nCons int
	// redCapRow is the capacity row's index in the reduced model, or -1
	// when presolve dropped it (then RHS patching is unsound: a row
	// proven redundant under capacity C need not be redundant under a
	// smaller C').
	redCapRow int
	// patchOK marks the reduction replayable under a smaller capacity
	// RHS: no column-singleton substitutions (those bake objective
	// numerics into the action stack) and the capacity row survived.
	patchOK bool
}

// fnv1a is an incremental 64-bit FNV-1a hash.
type fnv1a uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (h *fnv1a) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= (v >> (8 * i)) & 0xff
		x *= fnvPrime64
	}
	*h = fnv1a(x)
}

func (h *fnv1a) f64(v float64) { h.u64(math.Float64bits(v)) }
func (h *fnv1a) int(v int)     { h.u64(uint64(int64(v))) }

// modelKey hashes everything that determines the presolve reduction
// sequence — variable kinds, priorities and bounds, constraint terms,
// relations and right-hand sides, objective and sense — EXCEPT the
// capacity row's RHS, which is stored separately so models differing
// only there land on the same key. Returns the key, the capacity row's
// index (-1 if absent) and its effective RHS.
func modelKey(m *Model) (key uint64, capRow int, capRHS float64) {
	capRow = -1
	for i := range m.cons {
		if m.cons[i].Name == capacityRowName {
			if capRow >= 0 {
				// Ambiguous: two capacity rows. Hash everything; exact
				// matches only.
				capRow = -1
				break
			}
			capRow = i
		}
	}
	h := fnv1a(fnvOffset64)
	h.int(m.NumVars())
	for j := range m.names {
		h.int(int(m.kinds[j]))
		h.int(m.prio[j])
		h.f64(m.lo[j])
		h.f64(m.hi[j])
	}
	h.int(int(m.sense))
	h.f64(m.obj.Const)
	h.int(len(m.obj.Terms))
	for _, t := range m.obj.Terms {
		h.int(int(t.Var))
		h.f64(t.Coef)
	}
	h.int(len(m.cons))
	for i := range m.cons {
		c := &m.cons[i]
		h.int(int(c.Rel))
		h.int(len(c.Expr.Terms))
		for _, t := range c.Expr.Terms {
			h.int(int(t.Var))
			h.f64(t.Coef)
		}
		rhsEff := c.RHS - c.Expr.Const
		if i == capRow {
			capRHS = rhsEff
			continue
		}
		h.f64(rhsEff)
	}
	return uint64(h), capRow, capRHS
}

// clonePatchRHS shallow-clones a reduced model with one row's RHS
// shifted by delta. Variable and objective storage is shared — nothing
// downstream mutates a reduced model.
func clonePatchRHS(m *Model, row int, delta float64) *Model {
	c := &Model{
		names: m.names, kinds: m.kinds, lo: m.lo, hi: m.hi, prio: m.prio,
		cons: append([]Constraint(nil), m.cons...),
		obj:  m.obj, sense: m.sense, hasObj: m.hasObj, objConst: m.objConst,
	}
	c.cons[row].RHS += delta
	return c
}

// presolveFor returns a presolve result for m, reusing a cached
// reduction when the session has seen this structure before.
//
// Reuse rules (each exactness-preserving):
//
//   - exact hash match with equal capacity RHS: the models are
//     identical; share the cached reduction outright.
//   - hash match with SMALLER capacity RHS, patchOK: replay the cached
//     reductions and patch the reduced capacity row by the RHS delta.
//     Every cached reduction remains valid because the C' feasible
//     region is a subset of the C region it was derived from: derived
//     bounds and pins still hold, rows proven redundant over the (same)
//     bound box stay redundant, and dual fixing is sign-based — its
//     any-feasible-point exchange argument never references an RHS.
//   - anything else: run presolve fresh and cache the result.
func (s *Session) presolveFor(m *Model, tol float64) *presolveResult {
	key, capRow, capRHS := modelKey(m)
	s.mu.Lock()
	if e := s.pre[key]; e != nil && e.nVars == m.NumVars() && e.nCons == len(m.cons) {
		switch {
		case capRow < 0 || capRHS == e.capRHS:
			pr := *e.pr
			pr.rowsDropped, pr.colsFixed, pr.colsSubst = 0, 0, 0
			s.mu.Unlock()
			mPresolveReuse.Inc()
			return &pr
		case capRHS < e.capRHS && e.patchOK:
			pr := *e.pr
			pr.rowsDropped, pr.colsFixed, pr.colsSubst = 0, 0, 0
			pr.reduced = clonePatchRHS(e.pr.reduced, e.redCapRow, capRHS-e.capRHS)
			s.mu.Unlock()
			mPresolveReuse.Inc()
			return &pr
		case capRHS > e.capRHS:
			// Grown capacity: the cached reduction was derived under a
			// TIGHTER feasible region, so its redundancy proofs and pins
			// need not hold here. Reject the transfer explicitly and solve
			// cold (fresh presolve below, which then overwrites the cache
			// entry for this structure).
			s.mu.Unlock()
			mRHSGrownReject.Inc()
			return s.freshPresolve(m, tol, key, capRow, capRHS)
		}
	}
	s.mu.Unlock()
	return s.freshPresolve(m, tol, key, capRow, capRHS)
}

// freshPresolve runs presolve from scratch and caches the reduction
// under key (overwriting any stale entry for the structure).
func (s *Session) freshPresolve(m *Model, tol float64, key uint64, capRow int, capRHS float64) *presolveResult {
	pr := presolve(m, tol)
	if pr.status == needsSolve && pr.reduced != nil {
		ent := &sessionEntry{
			capRHS: capRHS, pr: pr,
			nVars: m.NumVars(), nCons: len(m.cons),
			redCapRow: -1,
		}
		if capRow >= 0 {
			for ri, oi := range pr.rowOrig {
				if oi == capRow {
					ent.redCapRow = ri
					break
				}
			}
			ent.patchOK = pr.colsSubst == 0 && ent.redCapRow >= 0
		}
		s.mu.Lock()
		s.pre[key] = ent
		s.mu.Unlock()
	}
	return pr
}
