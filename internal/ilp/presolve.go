package ilp

import "math"

// Root presolve. Before any simplex runs, Solve shrinks the model with a
// fixpoint of safe reductions:
//
//   - fixed-variable substitution: variables with lo == hi are folded
//     into row RHS and the objective constant;
//   - redundant-row elimination: a row whose activity bounds (computed
//     from the variable bounds) already imply the relation is dropped; a
//     row whose activity bounds contradict it proves infeasibility;
//   - bound tightening: each row implies bounds on each of its variables
//     given the others' activity range; integer bounds are rounded
//     inward, and crossing bounds prove infeasibility;
//   - dual fixing: a variable whose objective coefficient and row
//     coefficients all pull in the same direction is fixed at the bound
//     the objective prefers (this is what fixes linearization variables
//     L(x_i,x_j) once the fixed l's make their rows redundant);
//   - column-singleton substitution: a continuous variable appearing in
//     exactly one equality row is eliminated; its bounds become a range
//     on the remaining terms and its objective contribution is
//     redistributed.
//
// Reductions are recorded on a postsolve stack so the solution of the
// reduced model can be mapped back to the original variable space.

// presolveResult is the outcome of presolving one model.
type presolveResult struct {
	// reduced is the shrunk model, nil when presolve solved or refuted
	// the instance outright.
	reduced *Model
	// varOf maps a reduced column to its original variable index.
	varOf []int
	// status is Optimal when every variable was eliminated (the instance
	// is solved by postsolve alone), Infeasible when a contradiction was
	// found, and needsSolve otherwise.
	status Status
	// actions replays eliminated variables in reverse order.
	actions []postAction
	// rowOrig maps a reduced-model row to its index in the original
	// model, or -1 for rows synthesized by substitution. Session reuse
	// needs it to locate the capacity row inside the reduced model.
	rowOrig []int
	// rowsDropped / colsFixed / colsSubst count reductions for metrics.
	rowsDropped, colsFixed, colsSubst int
}

// needsSolve is a sentinel presolve status: the reduced model still has
// variables to optimize.
const needsSolve Status = -1

// postAction reconstructs one eliminated variable in the original space.
type postAction interface{ apply(x []float64) }

// fixPost sets an eliminated variable to its fixed value.
type fixPost struct {
	v   int
	val float64
}

func (a fixPost) apply(x []float64) { x[a.v] = a.val }

// substPost reconstructs a column singleton eliminated from an equality
// row: x[v] = (rhs - Σ terms)/coef.
type substPost struct {
	v     int
	coef  float64
	rhs   float64
	terms []Term // original variable indices
}

func (a substPost) apply(x []float64) {
	s := a.rhs
	for _, t := range a.terms {
		s -= t.Coef * x[t.Var]
	}
	x[a.v] = s / a.coef
}

// postsolve expands a reduced-space solution to the original variable
// space.
func (pr *presolveResult) postsolve(xRed []float64, n int) []float64 {
	x := make([]float64, n)
	for j, v := range pr.varOf {
		x[v] = xRed[j]
	}
	// Reverse order: earlier actions may reference variables eliminated
	// later.
	for i := len(pr.actions) - 1; i >= 0; i-- {
		pr.actions[i].apply(x)
	}
	return x
}

// psRow is a mutable working row during presolve.
type psRow struct {
	terms []Term
	rel   Rel
	rhs   float64
	alive bool
}

// presolver carries the working state of one presolve run.
type presolver struct {
	m      *Model
	lo, hi []float64
	cost   []float64 // minimization-space objective coefficients
	kinds  []VarKind
	alive  []bool
	rows   []psRow
	// nrows[j] counts alive rows referencing alive column j; rowOf[j] is
	// the row index of the unique reference when nrows[j] == 1.
	res presolveResult
	tol float64
}

// presolve runs the reduction fixpoint on m and returns the reduced
// model plus the postsolve recipe. The input model is not modified.
func presolve(m *Model, tol float64) *presolveResult {
	n := m.NumVars()
	ps := &presolver{
		m:     m,
		lo:    append([]float64(nil), m.lo...),
		hi:    append([]float64(nil), m.hi...),
		cost:  make([]float64, n),
		kinds: append([]VarKind(nil), m.kinds...),
		alive: make([]bool, n),
		tol:   tol,
	}
	sign := 1.0
	if m.sense == Maximize {
		sign = -1
	}
	for _, t := range m.obj.Terms {
		ps.cost[t.Var] += sign * t.Coef
	}
	for i := range ps.alive {
		ps.alive[i] = true
	}
	ps.rows = make([]psRow, len(m.cons))
	for i, c := range m.cons {
		// Merge duplicate variable references so coefficient tests see
		// one net coefficient per column.
		merged := make(map[Var]float64, len(c.Expr.Terms))
		order := make([]Var, 0, len(c.Expr.Terms))
		for _, t := range c.Expr.Terms {
			if _, ok := merged[t.Var]; !ok {
				order = append(order, t.Var)
			}
			merged[t.Var] += t.Coef
		}
		terms := make([]Term, 0, len(order))
		for _, v := range order {
			if merged[v] != 0 {
				terms = append(terms, Term{Var: v, Coef: merged[v]})
			}
		}
		ps.rows[i] = psRow{terms: terms, rel: c.Rel, rhs: c.RHS - c.Expr.Const, alive: true}
	}

	ps.run()
	return &ps.res
}

func (ps *presolver) infeasible() { ps.res.status = Infeasible }

// fixVar eliminates column v at value val, folding it into row RHS.
func (ps *presolver) fixVar(v int, val float64) {
	ps.alive[v] = false
	ps.res.actions = append(ps.res.actions, fixPost{v: v, val: val})
	ps.res.colsFixed++
	if val != 0 {
		for i := range ps.rows {
			r := &ps.rows[i]
			if !r.alive {
				continue
			}
			for k, t := range r.terms {
				if int(t.Var) == v {
					r.rhs -= t.Coef * val
					r.terms = append(r.terms[:k], r.terms[k+1:]...)
					break
				}
			}
		}
	} else {
		for i := range ps.rows {
			r := &ps.rows[i]
			if !r.alive {
				continue
			}
			for k, t := range r.terms {
				if int(t.Var) == v {
					r.terms = append(r.terms[:k], r.terms[k+1:]...)
					break
				}
			}
		}
	}
}

// activity returns the min/max of Σ terms over the current bounds,
// excluding column skip (pass -1 to include everything).
func (ps *presolver) activity(terms []Term, skip int) (lo, hi float64) {
	for _, t := range terms {
		j := int(t.Var)
		if j == skip {
			continue
		}
		if t.Coef > 0 {
			lo += t.Coef * ps.lo[j]
			hi += t.Coef * ps.hi[j]
		} else {
			lo += t.Coef * ps.hi[j]
			hi += t.Coef * ps.lo[j]
		}
	}
	return lo, hi
}

// tightenBound applies a derived bound to column j, rounding integer
// bounds inward. Reports whether anything changed; flags infeasibility.
func (ps *presolver) tightenBound(j int, newLo, newHi float64, haveLo, haveHi bool) bool {
	changed := false
	if haveLo && newLo > ps.lo[j]+ps.tol {
		if ps.kinds[j] != Continuous {
			newLo = math.Ceil(newLo - 1e-7)
		}
		if newLo > ps.lo[j]+ps.tol {
			ps.lo[j] = newLo
			changed = true
		}
	}
	if haveHi && newHi < ps.hi[j]-ps.tol {
		if ps.kinds[j] != Continuous {
			newHi = math.Floor(newHi + 1e-7)
		}
		if newHi < ps.hi[j]-ps.tol {
			ps.hi[j] = newHi
			changed = true
		}
	}
	if ps.lo[j] > ps.hi[j]+feasTol {
		ps.infeasible()
	}
	return changed
}

// pass runs one sweep of all reductions; reports whether anything
// changed.
func (ps *presolver) pass() bool {
	changed := false

	// Fixed variables: lo == hi (within tolerance).
	for j := range ps.alive {
		if !ps.alive[j] {
			continue
		}
		if ps.hi[j]-ps.lo[j] < ps.tol {
			val := ps.lo[j]
			if ps.kinds[j] != Continuous {
				val = math.Round(val)
			}
			ps.fixVar(j, val)
			changed = true
		}
	}
	if ps.res.status == Infeasible {
		return false
	}

	// Row reductions: redundancy, infeasibility, bound tightening.
	for i := range ps.rows {
		r := &ps.rows[i]
		if !r.alive {
			continue
		}
		actLo, actHi := ps.activity(r.terms, -1)
		switch r.rel {
		case LE:
			if actLo > r.rhs+feasTol {
				ps.infeasible()
				return false
			}
			if actHi <= r.rhs+ps.tol {
				r.alive = false
				ps.res.rowsDropped++
				changed = true
				continue
			}
		case GE:
			if actHi < r.rhs-feasTol {
				ps.infeasible()
				return false
			}
			if actLo >= r.rhs-ps.tol {
				r.alive = false
				ps.res.rowsDropped++
				changed = true
				continue
			}
		case EQ:
			if actLo > r.rhs+feasTol || actHi < r.rhs-feasTol {
				ps.infeasible()
				return false
			}
			if actHi-actLo < ps.tol && math.Abs(actLo-r.rhs) <= feasTol {
				r.alive = false
				ps.res.rowsDropped++
				changed = true
				continue
			}
		}
		if len(r.terms) == 0 {
			// Empty but not yet classified redundant/infeasible above:
			// activity is exactly 0-0, so the switch handled it.
			r.alive = false
			ps.res.rowsDropped++
			changed = true
			continue
		}
		// Bound tightening: row implies a bound on each variable given
		// the others' activity range.
		for _, t := range r.terms {
			j := int(t.Var)
			restLo, restHi := ps.activity(r.terms, j)
			// a*x + rest REL rhs.
			if r.rel == LE || r.rel == EQ {
				// a*x <= rhs - restLo
				if !math.IsInf(restLo, -1) {
					lim := (r.rhs - restLo) / t.Coef
					if t.Coef > 0 {
						changed = ps.tightenBound(j, 0, lim, false, true) || changed
					} else {
						changed = ps.tightenBound(j, lim, 0, true, false) || changed
					}
				}
			}
			if r.rel == GE || r.rel == EQ {
				// a*x >= rhs - restHi
				if !math.IsInf(restHi, 1) {
					lim := (r.rhs - restHi) / t.Coef
					if t.Coef > 0 {
						changed = ps.tightenBound(j, lim, 0, true, false) || changed
					} else {
						changed = ps.tightenBound(j, 0, lim, false, true) || changed
					}
				}
			}
			if ps.res.status == Infeasible {
				return false
			}
		}
	}

	// Column scans: count alive references per column.
	nrefs := make([]int, len(ps.alive))
	rowOf := make([]int, len(ps.alive))
	for i := range ps.rows {
		if !ps.rows[i].alive {
			continue
		}
		for _, t := range ps.rows[i].terms {
			nrefs[t.Var]++
			rowOf[t.Var] = i
		}
	}

	for j := range ps.alive {
		if !ps.alive[j] {
			continue
		}
		// Dual fixing: if decreasing x_j can never hurt feasibility and
		// never hurts the (minimization) objective, pin it to its lower
		// bound; symmetrically for increasing.
		downSafe, upSafe := true, true
		for i := range ps.rows {
			r := &ps.rows[i]
			if !r.alive {
				continue
			}
			for _, t := range r.terms {
				if int(t.Var) != j {
					continue
				}
				if r.rel == EQ {
					downSafe, upSafe = false, false
					break
				}
				// LE row: decreasing a*x is safe; GE row: increasing is.
				if (r.rel == LE) == (t.Coef > 0) {
					upSafe = false
				} else {
					downSafe = false
				}
			}
		}
		switch {
		case ps.cost[j] >= 0 && downSafe && !math.IsInf(ps.lo[j], -1):
			ps.fixVar(j, ps.lo[j])
			changed = true
			continue
		case ps.cost[j] <= 0 && upSafe && !math.IsInf(ps.hi[j], 1):
			ps.fixVar(j, ps.hi[j])
			changed = true
			continue
		case nrefs[j] == 0:
			// Unconstrained column the objective pulls toward an
			// infinite bound: the reduced LP would be unbounded; leave
			// the column for the solver to diagnose.
			continue
		}

		// Column-singleton substitution: a continuous variable whose only
		// appearance is one equality row.
		if nrefs[j] == 1 && ps.kinds[j] == Continuous {
			r := &ps.rows[rowOf[j]]
			if r.rel != EQ {
				continue
			}
			var coef float64
			rest := make([]Term, 0, len(r.terms)-1)
			for _, t := range r.terms {
				if int(t.Var) == j {
					coef = t.Coef
				} else {
					rest = append(rest, t)
				}
			}
			if math.Abs(coef) < 1e-7 {
				continue
			}
			if len(rest) == 0 {
				// The row pins x_j = rhs/coef outright.
				val := r.rhs / coef
				if val < ps.lo[j]-feasTol || val > ps.hi[j]+feasTol {
					ps.infeasible()
					return false
				}
				ps.lo[j], ps.hi[j] = val, val
				r.alive = false
				ps.res.rowsDropped++
				changed = true
				continue
			}
			// x_j = (rhs - rest)/coef; x_j ∈ [lo, hi] becomes a range on
			// rest: rest ∈ [rhs - coef*hi, rhs - coef*lo] for coef > 0.
			ps.res.actions = append(ps.res.actions,
				substPost{v: j, coef: coef, rhs: r.rhs, terms: append([]Term(nil), rest...)})
			ps.res.colsSubst++
			lim1, lim2 := r.rhs-coef*ps.hi[j], r.rhs-coef*ps.lo[j]
			if coef < 0 {
				lim1, lim2 = lim2, lim1
			}
			r.alive = false
			if !math.IsInf(lim1, -1) {
				ps.rows = append(ps.rows, psRow{terms: append([]Term(nil), rest...), rel: GE, rhs: lim1, alive: true})
			}
			if !math.IsInf(lim2, 1) {
				ps.rows = append(ps.rows, psRow{terms: append([]Term(nil), rest...), rel: LE, rhs: lim2, alive: true})
			}
			// Objective: cost_j*x_j = cost_j*(rhs - rest)/coef.
			if c := ps.cost[j]; c != 0 {
				for _, t := range rest {
					ps.cost[t.Var] -= c * t.Coef / coef
				}
			}
			ps.alive[j] = false
			changed = true
		}
	}
	return changed
}

func (ps *presolver) run() {
	ps.res.status = needsSolve
	const maxPasses = 16
	for p := 0; p < maxPasses; p++ {
		if !ps.pass() || ps.res.status == Infeasible {
			break
		}
	}
	if ps.res.status == Infeasible {
		return
	}

	// Assemble the reduced model.
	n := len(ps.alive)
	colOf := make([]int, n)
	red := NewModel()
	for j := 0; j < n; j++ {
		colOf[j] = -1
		if !ps.alive[j] {
			continue
		}
		v := red.AddVar(ps.m.names[j], ps.kinds[j], ps.lo[j], ps.hi[j])
		red.SetBranchPriority(v, ps.m.prio[j])
		colOf[j] = int(v)
		ps.res.varOf = append(ps.res.varOf, j)
	}
	if red.NumVars() == 0 {
		// Every variable was eliminated; any alive row is now empty and
		// must hold at zero activity (a pass-cap safety net — the sweeps
		// normally classify these).
		for i := range ps.rows {
			r := &ps.rows[i]
			if !r.alive {
				continue
			}
			bad := (r.rel == LE && 0 > r.rhs+feasTol) ||
				(r.rel == GE && 0 < r.rhs-feasTol) ||
				(r.rel == EQ && math.Abs(r.rhs) > feasTol)
			if bad {
				ps.res.status = Infeasible
				return
			}
		}
		ps.res.status = Optimal
		return
	}
	nOrigRows := len(ps.m.cons)
	for i := range ps.rows {
		r := &ps.rows[i]
		if !r.alive {
			continue
		}
		e := LinExpr{}
		for _, t := range r.terms {
			e = e.Add(t.Coef, Var(colOf[t.Var]))
		}
		red.AddConstraint("", e, r.rel, r.rhs)
		// Rows beyond the original count were added by column-singleton
		// substitution and have no original counterpart.
		orig := i
		if i >= nOrigRows {
			orig = -1
		}
		ps.res.rowOrig = append(ps.res.rowOrig, orig)
	}
	// Objective in minimization space; Solve evaluates the original
	// objective on the postsolved point, so the constant term is
	// irrelevant here.
	obj := LinExpr{}
	for j := 0; j < n; j++ {
		if ps.alive[j] && ps.cost[j] != 0 {
			obj = obj.Add(ps.cost[j], Var(colOf[j]))
		}
	}
	red.SetObjective(obj, Minimize)
	ps.res.reduced = red
}
