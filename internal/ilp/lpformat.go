package ilp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ReadLP parses a practical subset of the CPLEX LP file format:
//
//	\ comments run to end of line
//	Minimize / Maximize
//	  obj: 3 x1 + 2 x2
//	Subject To
//	  c1: x1 + x2 <= 4
//	Bounds
//	  0 <= x1 <= 10
//	  x2 >= 1
//	  x3 free
//	Binary / Binaries
//	  x1
//	General / Generals
//	  x2
//	End
//
// Variables default to [0, +inf) continuous, per the format's convention.
func ReadLP(r io.Reader) (*Model, error) {
	toks, err := tokenizeLP(r)
	if err != nil {
		return nil, err
	}
	p := &lpParser{toks: toks, m: NewModel(), vars: make(map[string]Var)}
	if err := p.parse(); err != nil {
		return nil, err
	}
	return p.m, nil
}

// ParseLP parses an LP model from a string.
func ParseLP(s string) (*Model, error) { return ReadLP(strings.NewReader(s)) }

type lpToken struct {
	kind lpTokKind
	text string
	num  float64
	line int
}

type lpTokKind int

const (
	tokIdent lpTokKind = iota
	tokNumber
	tokOp // + - : <= >= = < >
	tokEOF
)

func tokenizeLP(r io.Reader) ([]lpToken, error) {
	br := bufio.NewReader(r)
	var toks []lpToken
	line := 1
	peek := func() (byte, bool) {
		b, err := br.Peek(1)
		if err != nil {
			return 0, false
		}
		return b[0], true
	}
	for {
		b, ok := peek()
		if !ok {
			break
		}
		switch {
		case b == '\n':
			br.ReadByte()
			line++
		case b == ' ' || b == '\t' || b == '\r':
			br.ReadByte()
		case b == '\\':
			// Comment to end of line.
			for {
				c, err := br.ReadByte()
				if err != nil || c == '\n' {
					if c == '\n' {
						line++
					}
					break
				}
			}
		case b == '+' || b == '-' || b == ':':
			br.ReadByte()
			toks = append(toks, lpToken{kind: tokOp, text: string(b), line: line})
		case b == '<' || b == '>' || b == '=':
			br.ReadByte()
			op := string(b)
			if n, ok := peek(); ok && n == '=' {
				br.ReadByte()
				op += "="
			}
			// Normalize < to <= and > to >= (the format treats them the
			// same).
			switch op {
			case "<":
				op = "<="
			case ">":
				op = ">="
			}
			toks = append(toks, lpToken{kind: tokOp, text: op, line: line})
		case b >= '0' && b <= '9' || b == '.':
			var sb strings.Builder
			for {
				c, ok := peek()
				if !ok {
					break
				}
				if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
					sb.WriteByte(c)
					br.ReadByte()
					// Allow exponent signs.
					if c == 'e' || c == 'E' {
						if s, ok := peek(); ok && (s == '+' || s == '-') {
							sb.WriteByte(s)
							br.ReadByte()
						}
					}
					continue
				}
				break
			}
			v, err := strconv.ParseFloat(sb.String(), 64)
			if err != nil {
				return nil, fmt.Errorf("ilp: lp line %d: bad number %q", line, sb.String())
			}
			toks = append(toks, lpToken{kind: tokNumber, num: v, line: line})
		case isIdentStart(b):
			var sb strings.Builder
			for {
				c, ok := peek()
				if !ok || !isIdentPart(c) {
					break
				}
				sb.WriteByte(c)
				br.ReadByte()
			}
			toks = append(toks, lpToken{kind: tokIdent, text: sb.String(), line: line})
		default:
			return nil, fmt.Errorf("ilp: lp line %d: unexpected byte %q", line, b)
		}
	}
	toks = append(toks, lpToken{kind: tokEOF, line: line})
	return toks, nil
}

func isIdentStart(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '_'
}

func isIdentPart(b byte) bool {
	return isIdentStart(b) || b >= '0' && b <= '9' || b == '.' || b == '(' || b == ')' || b == '[' || b == ']'
}

type lpParser struct {
	toks []lpToken
	pos  int
	m    *Model
	vars map[string]Var
}

func (p *lpParser) cur() lpToken { return p.toks[p.pos] }
func (p *lpParser) advance()     { p.pos++ }
func (p *lpParser) errf(format string, args ...any) error {
	return fmt.Errorf("ilp: lp line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

// keyword checks (case-insensitive) whether the current tokens spell one of
// the section keywords and consumes them.
func (p *lpParser) keyword() string {
	t := p.cur()
	if t.kind != tokIdent {
		return ""
	}
	w := strings.ToLower(t.text)
	switch w {
	case "minimize", "minimise", "min":
		p.advance()
		return "minimize"
	case "maximize", "maximise", "max":
		p.advance()
		return "maximize"
	case "subject":
		// "subject to"
		if n := p.toks[p.pos+1]; n.kind == tokIdent && strings.EqualFold(n.text, "to") {
			p.pos += 2
			return "subjectto"
		}
		return ""
	case "st", "s.t.":
		p.advance()
		return "subjectto"
	case "such":
		if n := p.toks[p.pos+1]; n.kind == tokIdent && strings.EqualFold(n.text, "that") {
			p.pos += 2
			return "subjectto"
		}
		return ""
	case "bounds", "bound":
		p.advance()
		return "bounds"
	case "binary", "binaries", "bin":
		p.advance()
		return "binary"
	case "general", "generals", "gen", "integer", "integers":
		p.advance()
		return "general"
	case "end":
		p.advance()
		return "end"
	}
	return ""
}

func (p *lpParser) varOf(name string) Var {
	if v, ok := p.vars[name]; ok {
		return v
	}
	v := p.m.AddVar(name, Continuous, 0, math.Inf(1))
	p.vars[name] = v
	return v
}

func (p *lpParser) parse() error {
	kw := p.keyword()
	if kw != "minimize" && kw != "maximize" {
		return p.errf("expected Minimize or Maximize")
	}
	sense := Minimize
	if kw == "maximize" {
		sense = Maximize
	}
	obj, _, err := p.parseExpr(true)
	if err != nil {
		return err
	}
	p.m.SetObjective(obj, sense)

	if kw := p.keyword(); kw != "subjectto" {
		return p.errf("expected Subject To")
	}
	// Constraints until a section keyword.
	for {
		if p.cur().kind == tokEOF {
			return nil
		}
		save := p.pos
		kw := p.keyword()
		if kw != "" {
			switch kw {
			case "bounds":
				if err := p.parseBounds(); err != nil {
					return err
				}
				continue
			case "binary":
				if err := p.parseKindList(Binary); err != nil {
					return err
				}
				continue
			case "general":
				if err := p.parseKindList(Integer); err != nil {
					return err
				}
				continue
			case "end":
				return nil
			default:
				p.pos = save
			}
		}
		expr, name, err := p.parseExpr(true)
		if err != nil {
			return err
		}
		rel, err := p.parseRel()
		if err != nil {
			return err
		}
		rhsExpr, _, err := p.parseExpr(false)
		if err != nil {
			return err
		}
		if len(rhsExpr.Terms) != 0 {
			return p.errf("constraint RHS must be constant")
		}
		p.m.AddConstraint(name, expr, rel, rhsExpr.Const)
	}
}

func (p *lpParser) parseRel() (Rel, error) {
	t := p.cur()
	if t.kind != tokOp {
		return LE, p.errf("expected relation, got %q", t.text)
	}
	p.advance()
	switch t.text {
	case "<=":
		return LE, nil
	case ">=":
		return GE, nil
	case "=":
		return EQ, nil
	}
	return LE, p.errf("unexpected operator %q", t.text)
}

// parseExpr reads a linear expression, stopping at a relation operator, a
// section keyword, or EOF. When named is true, a leading "ident :" is
// consumed as the expression's label.
func (p *lpParser) parseExpr(named bool) (LinExpr, string, error) {
	var e LinExpr
	label := ""
	if named && p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == ":" {
		if p.isSectionHere() {
			return e, "", p.errf("unexpected section keyword")
		}
		label = p.cur().text
		p.pos += 2
	}
	sign := 1.0
	expectTerm := true
	for {
		t := p.cur()
		switch {
		case t.kind == tokOp && (t.text == "+" || t.text == "-"):
			if t.text == "-" {
				sign = -sign
			}
			p.advance()
			expectTerm = true
		case t.kind == tokNumber:
			p.advance()
			coef := sign * t.num
			// Optional following identifier makes this a term (unless it
			// is the next constraint's label or a section keyword).
			if p.cur().kind == tokIdent && !p.isSectionHere() && !p.isLabelHere() {
				v := p.varOf(p.cur().text)
				p.advance()
				e.Terms = append(e.Terms, Term{Var: v, Coef: coef})
			} else {
				e.Const += coef
			}
			sign = 1
			expectTerm = false
		case t.kind == tokIdent:
			if p.isSectionHere() || p.isLabelHere() {
				if expectTerm && len(e.Terms) == 0 && e.Const == 0 {
					return e, label, p.errf("empty expression")
				}
				return e, label, nil
			}
			p.advance()
			e.Terms = append(e.Terms, Term{Var: p.varOf(t.text), Coef: sign})
			sign = 1
			expectTerm = false
		default:
			// Relation operator, EOF, colon — expression ends.
			return e, label, nil
		}
	}
}

// isSectionHere reports whether the current identifier begins a section
// keyword, without consuming it.
func (p *lpParser) isSectionHere() bool {
	save := p.pos
	kw := p.keyword()
	p.pos = save
	return kw != ""
}

// isLabelHere reports whether the current identifier is followed by a
// colon, i.e. begins the next constraint's label.
func (p *lpParser) isLabelHere() bool {
	return p.cur().kind == tokIdent &&
		p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == ":"
}

func (p *lpParser) parseBounds() error {
	for {
		if p.cur().kind == tokEOF || p.isSectionHere() {
			return nil
		}
		// Forms:
		//   lo <= x <= hi
		//   x <= hi | x >= lo | x = v
		//   x free
		var lead *float64
		if t := p.cur(); t.kind == tokNumber || (t.kind == tokOp && (t.text == "-" || t.text == "+")) {
			v, err := p.parseSignedNumber()
			if err != nil {
				return err
			}
			lead = &v
			if _, err := p.parseRel(); err != nil {
				return err
			}
		}
		if p.cur().kind != tokIdent {
			return p.errf("expected variable in bounds")
		}
		name := p.cur().text
		v := p.varOf(name)
		p.advance()
		lo, hi := p.m.Bounds(v)
		bounded := lead != nil
		if lead != nil {
			lo = *lead
		}
		// Optional trailing part.
		if t := p.cur(); t.kind == tokIdent && strings.EqualFold(t.text, "free") {
			p.advance()
			lo, hi = math.Inf(-1), math.Inf(1)
			bounded = true
		} else if t.kind == tokOp && (t.text == "<=" || t.text == ">=" || t.text == "=") {
			bounded = true
			rel, err := p.parseRel()
			if err != nil {
				return err
			}
			val, err := p.parseSignedNumber()
			if err != nil {
				return err
			}
			switch rel {
			case LE:
				hi = val
			case GE:
				lo = val
			case EQ:
				lo, hi = val, val
			}
		}
		if !bounded {
			// A bare identifier bounds nothing; accepting it would mint a
			// variable that a write/read round trip cannot preserve.
			return p.errf("bounds entry for %q carries no bound", name)
		}
		p.m.SetBounds(v, lo, hi)
	}
}

func (p *lpParser) parseSignedNumber() (float64, error) {
	sign := 1.0
	for p.cur().kind == tokOp && (p.cur().text == "+" || p.cur().text == "-") {
		if p.cur().text == "-" {
			sign = -sign
		}
		p.advance()
	}
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, "inf") {
		p.advance()
		return sign * math.Inf(1), nil
	}
	if t.kind != tokNumber {
		return 0, p.errf("expected number, got %q", t.text)
	}
	p.advance()
	return sign * t.num, nil
}

func (p *lpParser) parseKindList(kind VarKind) error {
	for {
		if p.cur().kind == tokEOF || p.isSectionHere() {
			return nil
		}
		if p.cur().kind != tokIdent {
			return p.errf("expected variable name")
		}
		v := p.varOf(p.cur().text)
		p.advance()
		p.m.kinds[v] = kind
		if kind == Binary {
			lo, hi := p.m.Bounds(v)
			p.m.SetBounds(v, math.Max(lo, 0), math.Min(hi, 1))
		}
	}
}

// WriteLP renders the model in CPLEX LP format. Models written by WriteLP
// can be read back with ReadLP.
func WriteLP(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	obj, sense := m.Objective()
	if sense == Maximize {
		fmt.Fprintln(bw, "Maximize")
	} else {
		fmt.Fprintln(bw, "Minimize")
	}
	fmt.Fprintf(bw, " obj: %s\n", exprString(m, obj))
	fmt.Fprintln(bw, "Subject To")
	for _, c := range m.cons {
		fmt.Fprintf(bw, " %s: %s %s %s\n", c.Name, exprString(m, c.Expr), c.Rel, trimFloat(c.RHS))
	}
	// A continuous variable with default bounds that never carries a
	// nonzero coefficient would appear nowhere in the output; emit an
	// explicit default bound for it so the write/read round trip
	// preserves the model's shape.
	referenced := make([]bool, len(m.names))
	markExpr := func(e LinExpr) {
		for _, t := range e.Terms {
			if t.Coef != 0 {
				referenced[t.Var] = true
			}
		}
	}
	markExpr(obj)
	for _, c := range m.cons {
		markExpr(c.Expr)
	}
	// Bounds for anything that differs from the default [0, inf).
	var boundLines []string
	for i := range m.names {
		lo, hi := m.lo[i], m.hi[i]
		if m.kinds[i] == Binary && lo == 0 && hi == 1 {
			continue
		}
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			boundLines = append(boundLines, fmt.Sprintf(" %s free", m.names[i]))
		case lo == 0 && math.IsInf(hi, 1):
			if m.kinds[i] == Continuous && !referenced[i] {
				boundLines = append(boundLines, fmt.Sprintf(" %s >= 0", m.names[i]))
			}
		case math.IsInf(hi, 1):
			boundLines = append(boundLines, fmt.Sprintf(" %s >= %s", m.names[i], trimFloat(lo)))
		default:
			boundLines = append(boundLines,
				fmt.Sprintf(" %s <= %s <= %s", trimFloat(lo), m.names[i], trimFloat(hi)))
		}
	}
	if len(boundLines) > 0 {
		fmt.Fprintln(bw, "Bounds")
		for _, l := range boundLines {
			fmt.Fprintln(bw, l)
		}
	}
	writeKind := func(kind VarKind, header string) {
		var names []string
		for i, k := range m.kinds {
			if k == kind {
				names = append(names, m.names[i])
			}
		}
		if len(names) == 0 {
			return
		}
		sort.Strings(names)
		fmt.Fprintln(bw, header)
		fmt.Fprintf(bw, " %s\n", strings.Join(names, " "))
	}
	writeKind(Binary, "Binary")
	writeKind(Integer, "General")
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

func exprString(m *Model, e LinExpr) string {
	var sb strings.Builder
	first := true
	emit := func(c float64, name string) {
		if c == 0 {
			return
		}
		if first {
			if c < 0 {
				sb.WriteString("- ")
			}
		} else if c < 0 {
			sb.WriteString(" - ")
		} else {
			sb.WriteString(" + ")
		}
		a := math.Abs(c)
		if name == "" {
			sb.WriteString(trimFloat(a))
		} else if a == 1 {
			sb.WriteString(name)
		} else {
			sb.WriteString(trimFloat(a) + " " + name)
		}
		first = false
	}
	for _, t := range e.Terms {
		emit(t.Coef, m.names[t.Var])
	}
	emit(e.Const, "")
	if first {
		return "0"
	}
	return sb.String()
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
