package ilp

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSenseKindRelStrings(t *testing.T) {
	if Minimize.String() != "minimize" || Maximize.String() != "maximize" {
		t.Error("sense names")
	}
	if Continuous.String() != "continuous" || Binary.String() != "binary" || Integer.String() != "integer" {
		t.Error("kind names")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("rel names")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Feasible.String() != "feasible" ||
		Aborted.String() != "aborted" {
		t.Error("status names")
	}
}

func TestExprBuilder(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, 10)
	y := m.AddContinuous("y", 0, 10)
	e := Expr(2, x, -1.5, y).Add(3, x).AddConst(4)
	if got := Eval(e, []float64{1, 2}); !almostEq(got, 2*1-1.5*2+3*1+4) {
		t.Errorf("Eval = %g", got)
	}
	// Bad arguments panic.
	for _, f := range []func(){
		func() { Expr(1.0) },
		func() { Expr("x", x) },
		func() { Expr(1, "y") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Expr accepted bad arguments")
				}
			}()
			f()
		}()
	}
}

func TestModelValidate(t *testing.T) {
	m := NewModel()
	if err := m.Validate(); err == nil {
		t.Error("empty model accepted")
	}
	x := m.AddContinuous("x", 0, 1)
	if err := m.Validate(); err == nil {
		t.Error("model without objective accepted")
	}
	m.SetObjective(Expr(1, x), Minimize)
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	m.SetBounds(x, 2, 1)
	if err := m.Validate(); err == nil {
		t.Error("inverted bounds accepted")
	}
	m.SetBounds(x, 0, 1)
	m.AddConstraint("bad", LinExpr{Terms: []Term{{Var: Var(9), Coef: 1}}}, LE, 1)
	if err := m.Validate(); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestLPSimple2D(t *testing.T) {
	// max 3x + 5y st x<=4, 2y<=12, 3x+2y<=18 -> x=2,y=6, obj=36.
	m := NewModel()
	x := m.AddContinuous("x", 0, math.Inf(1))
	y := m.AddContinuous("y", 0, math.Inf(1))
	m.AddConstraint("c1", Expr(1, x), LE, 4)
	m.AddConstraint("c2", Expr(2, y), LE, 12)
	m.AddConstraint("c3", Expr(3, x, 2, y), LE, 18)
	m.SetObjective(Expr(3, x, 5, y), Maximize)
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almostEq(sol.Objective, 36) || !almostEq(sol.Value(x), 2) || !almostEq(sol.Value(y), 6) {
		t.Errorf("got obj=%g x=%g y=%g", sol.Objective, sol.Value(x), sol.Value(y))
	}
}

func TestLPMinimizationWithGE(t *testing.T) {
	// min 2x + 3y st x+y >= 10, x >= 2, y >= 1 -> x=9? obj: coefficient of
	// x is cheaper: push y to its lower bound 1, x=9: obj=21.
	m := NewModel()
	x := m.AddContinuous("x", 2, math.Inf(1))
	y := m.AddContinuous("y", 1, math.Inf(1))
	m.AddConstraint("cover", Expr(1, x, 1, y), GE, 10)
	m.SetObjective(Expr(2, x, 3, y), Minimize)
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, 21) {
		t.Fatalf("got %v obj=%g, want optimal 21", sol.Status, sol.Objective)
	}
}

func TestLPEquality(t *testing.T) {
	// min x+y st x + 2y = 4, x - y = 1 -> x=2, y=1, obj=3.
	m := NewModel()
	x := m.AddContinuous("x", 0, math.Inf(1))
	y := m.AddContinuous("y", 0, math.Inf(1))
	m.AddConstraint("e1", Expr(1, x, 2, y), EQ, 4)
	m.AddConstraint("e2", Expr(1, x, -1, y), EQ, 1)
	m.SetObjective(Expr(1, x, 1, y), Minimize)
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Optimal || !almostEq(sol.Value(x), 2) || !almostEq(sol.Value(y), 1) {
		t.Fatalf("got %v x=%g y=%g", sol.Status, sol.Value(x), sol.Value(y))
	}
}

func TestLPInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, 5)
	m.AddConstraint("c", Expr(1, x), GE, 10)
	m.SetObjective(Expr(1, x), Minimize)
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestLPUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, math.Inf(1))
	m.SetObjective(Expr(1, x), Maximize)
	m.AddConstraint("c", Expr(-1, x), LE, 0) // x >= 0, no upper limit
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestLPFreeVariable(t *testing.T) {
	// min x st x >= -7 with x free: optimum -7.
	m := NewModel()
	x := m.AddVar("x", Continuous, math.Inf(-1), math.Inf(1))
	m.AddConstraint("c", Expr(1, x), GE, -7)
	m.SetObjective(Expr(1, x), Minimize)
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Optimal || !almostEq(sol.Value(x), -7) {
		t.Fatalf("got %v x=%g, want -7", sol.Status, sol.Value(x))
	}
}

func TestLPNegativeLowerBounds(t *testing.T) {
	// min x + y with x in [-5,5], y in [-3, 3], x + y >= -6 -> x=-5, y=-1? No:
	// both want to go low; constraint binds at -6: obj=-6 (any split).
	m := NewModel()
	x := m.AddContinuous("x", -5, 5)
	y := m.AddContinuous("y", -3, 3)
	m.AddConstraint("c", Expr(1, x, 1, y), GE, -6)
	m.SetObjective(Expr(1, x, 1, y), Minimize)
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, -6) {
		t.Fatalf("got %v obj=%g, want -6", sol.Status, sol.Objective)
	}
}

func TestLPObjectiveConstant(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, 2)
	m.SetObjective(Expr(1, x).AddConst(10), Minimize)
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if !almostEq(sol.Objective, 10) {
		t.Errorf("objective constant lost: %g", sol.Objective)
	}
}

func TestLPDegenerate(t *testing.T) {
	// A classic degenerate LP; Bland fallback must terminate.
	m := NewModel()
	x1 := m.AddContinuous("x1", 0, math.Inf(1))
	x2 := m.AddContinuous("x2", 0, math.Inf(1))
	x3 := m.AddContinuous("x3", 0, math.Inf(1))
	m.AddConstraint("c1", Expr(0.5, x1, -5.5, x2, -2.5, x3), LE, 0)
	m.AddConstraint("c2", Expr(0.5, x1, -1.5, x2, -0.5, x3), LE, 0)
	m.AddConstraint("c3", Expr(1, x1), LE, 1)
	m.SetObjective(Expr(10, x1, -57, x2, -9, x3), Maximize)
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almostEq(sol.Objective, 1) { // known optimum x=(1, 0, 1)·? obj=1
		t.Errorf("objective = %g, want 1", sol.Objective)
	}
}

func TestILPKnapsack(t *testing.T) {
	// Classic 0/1 knapsack: values 60,100,120 weights 10,20,30 cap 50 ->
	// take items 2,3: value 220.
	m := NewModel()
	x1 := m.AddBinary("x1")
	x2 := m.AddBinary("x2")
	x3 := m.AddBinary("x3")
	m.AddConstraint("cap", Expr(10, x1, 20, x2, 30, x3), LE, 50)
	m.SetObjective(Expr(60, x1, 100, x2, 120, x3), Maximize)
	sol, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, 220) {
		t.Fatalf("got %v obj=%g, want optimal 220", sol.Status, sol.Objective)
	}
	if sol.Value(x1) != 0 || sol.Value(x2) != 1 || sol.Value(x3) != 1 {
		t.Errorf("wrong selection: %v", sol.X)
	}
}

func TestILPIntegerVariables(t *testing.T) {
	// max x + y st 2x + 3y <= 12, x,y integer >=0 and x <= 4: optimum 5
	// (x=4, y=1) or (x=3, y=2): obj 5.
	m := NewModel()
	x := m.AddVar("x", Integer, 0, 4)
	y := m.AddVar("y", Integer, 0, math.Inf(1))
	m.AddConstraint("c", Expr(2, x, 3, y), LE, 12)
	m.SetObjective(Expr(1, x, 1, y), Maximize)
	sol, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, 5) {
		t.Fatalf("got %v obj=%g, want 5", sol.Status, sol.Objective)
	}
	for _, v := range []Var{x, y} {
		if frac := math.Abs(sol.Value(v) - math.Round(sol.Value(v))); frac > 1e-9 {
			t.Errorf("non-integral value %g", sol.Value(v))
		}
	}
}

func TestILPInfeasibleIntegrality(t *testing.T) {
	// 2x = 1 with x binary: LP-feasible (x=0.5) but integer-infeasible.
	m := NewModel()
	x := m.AddBinary("x")
	m.AddConstraint("c", Expr(2, x), EQ, 1)
	m.SetObjective(Expr(1, x), Minimize)
	sol, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestILPEqualsBruteForceRandomized(t *testing.T) {
	// Randomized cross-validation on small instances.
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	fl := func(lo, hi float64) float64 {
		return lo + (hi-lo)*float64(next()%10000)/10000
	}
	for trial := 0; trial < 60; trial++ {
		n := 3 + int(next()%6)  // 3..8 binaries
		nc := 1 + int(next()%4) // 1..4 constraints
		m := NewModel()
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = m.AddBinary("")
		}
		obj := LinExpr{}
		for _, v := range vars {
			obj = obj.Add(fl(-10, 10), v)
		}
		sense := Minimize
		if next()%2 == 0 {
			sense = Maximize
		}
		m.SetObjective(obj, sense)
		for c := 0; c < nc; c++ {
			e := LinExpr{}
			for _, v := range vars {
				e = e.Add(fl(0, 5), v)
			}
			rel := []Rel{LE, GE}[next()%2]
			rhs := fl(1, float64(n)*2.5)
			m.AddConstraint("", e, rel, rhs)
		}
		want, err := SolveBruteForce(context.Background(), m)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		got, err := Solve(context.Background(), m, Options{})
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if want.Status != got.Status {
			t.Fatalf("trial %d: status %v vs brute %v", trial, got.Status, want.Status)
		}
		if want.Status == Optimal && !almostEq(want.Objective, got.Objective) {
			t.Fatalf("trial %d: obj %g vs brute %g", trial, got.Objective, want.Objective)
		}
	}
}

func TestILPNodeLimit(t *testing.T) {
	// A 20-binary knapsack with a node limit of 1 can at best prove
	// nothing or return a feasible incumbent.
	m := NewModel()
	e := LinExpr{}
	obj := LinExpr{}
	for i := 0; i < 20; i++ {
		v := m.AddBinary("")
		e = e.Add(float64(3+i%7), v)
		obj = obj.Add(float64(5+(i*13)%11), v)
	}
	m.AddConstraint("cap", e, LE, 31)
	m.SetObjective(obj, Maximize)
	sol, err := Solve(context.Background(), m, Options{MaxNodes: 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Feasible && sol.Status != Aborted {
		t.Fatalf("status = %v, want feasible or aborted", sol.Status)
	}
	// And with an ample budget it is optimal.
	sol, err = Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
}

func TestSolveWithoutIntegersMatchesLP(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, 3)
	y := m.AddContinuous("y", 0, 3)
	m.AddConstraint("c", Expr(1, x, 1, y), LE, 4)
	m.SetObjective(Expr(2, x, 1, y), Maximize)
	a, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != Optimal || b.Status != Optimal || !almostEq(a.Objective, b.Objective) {
		t.Fatalf("LP %v/%g vs MILP %v/%g", a.Status, a.Objective, b.Status, b.Objective)
	}
}

func TestBruteForceRejectsContinuous(t *testing.T) {
	m := NewModel()
	m.AddContinuous("x", 0, 5)
	m.SetObjective(Expr(1, Var(0)), Minimize)
	if _, err := SolveBruteForce(context.Background(), m); err == nil {
		t.Fatal("brute force accepted a continuous variable")
	}
}

// TestSolveTrace: with Options.Trace set the solver narrates its progress
// — periodic node lines, incumbent improvements and a final summary — and
// the reported effort counters match the Solution.
func TestSolveTrace(t *testing.T) {
	// A knapsack big enough to force branching.
	m := NewModel()
	vals := []float64{60, 100, 120, 70, 90, 45, 30, 80}
	wts := []float64{10, 20, 30, 15, 25, 12, 8, 18}
	var obj, wt LinExpr
	for i := range vals {
		v := m.AddBinary("")
		obj = obj.Add(vals[i], v)
		wt = wt.Add(wts[i], v)
	}
	m.SetObjective(obj, Maximize)
	m.AddConstraint("cap", wt, LE, 60)

	var buf strings.Builder
	sol, err := Solve(context.Background(), m, Options{Trace: &buf, TraceEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	out := buf.String()
	if !strings.Contains(out, "ilp: node=1 ") {
		t.Errorf("trace missing per-node progress:\n%s", out)
	}
	if !strings.Contains(out, "ilp: incumbent ") {
		t.Errorf("trace missing incumbent line:\n%s", out)
	}
	done := fmt.Sprintf("ilp: done status=optimal nodes=%d branches=%d iters=%d",
		sol.Nodes, sol.Branches, sol.SimplexIters)
	if !strings.Contains(out, done) {
		t.Errorf("trace missing final summary %q:\n%s", done, out)
	}
	if sol.Branches <= 0 || sol.Branches >= sol.Nodes {
		t.Errorf("branches = %d out of range (nodes=%d)", sol.Branches, sol.Nodes)
	}

	// Trace off: silent, same answer.
	quiet, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Objective != sol.Objective || quiet.Nodes != sol.Nodes {
		t.Errorf("trace changed the search: obj %g vs %g, nodes %d vs %d",
			quiet.Objective, sol.Objective, quiet.Nodes, sol.Nodes)
	}
}
