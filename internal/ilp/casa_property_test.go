package ilp

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// Property tests of CASA-shaped models: knapsack capacity plus conflict
// linearization (paper eqs (7)–(17)), in both the Tight (continuous
// L(x_i,x_j), one row) and Faithful (binary L, three rows) encodings,
// with pinned variables and branch priorities like core.BuildModel
// produces. Every combination of presolve / warm-started basis /
// incumbent heuristic must agree — with exhaustive enumeration where the
// model is all-binary, and with each other everywhere.

type casaRNG uint64

func (r *casaRNG) next() uint64 {
	*r ^= *r << 13
	*r ^= *r >> 7
	*r ^= *r << 17
	return uint64(*r)
}

func (r *casaRNG) intn(n int) int            { return int(r.next() % uint64(n)) }
func (r *casaRNG) fl(lo, hi float64) float64 { return lo + (hi-lo)*float64(r.next()%10000)/10000 }

// buildCASAModel assembles one random CASA-shaped instance:
//
//	min Σ gain_i·l_i + Σ miss_e·L_e
//	s.t. Σ size_i·(1−l_i) ≤ cap            (knapsack)
//	     tight:    l_i + l_j − L_e ≤ 1      (L continuous in [0,1])
//	     faithful: L_e ≥ l_i + l_j − 1, L_e ≤ l_i, L_e ≤ l_j  (L binary)
//
// with l's at branch priority 1 and an occasional l pinned to a fixed
// value (the oversized-trace case).
func buildCASAModel(r *casaRNG, nl, ne int, faithful bool) *Model {
	m := NewModel()
	ls := make([]Var, nl)
	for i := range ls {
		ls[i] = m.AddBinary(fmt.Sprintf("l%d", i))
		m.SetBranchPriority(ls[i], 1)
	}
	obj := LinExpr{}
	knap := LinExpr{}
	total := 0.0
	for _, l := range ls {
		gain := r.fl(-40, 25) // energy delta for caching this trace
		obj = obj.Add(gain, l)
		size := float64(1 + r.intn(9))
		total += size
		// Σ size·(1−l) ≤ cap  ⇔  −Σ size·l ≤ cap − Σ size.
		knap = knap.Add(-size, l)
	}
	spm := math.Floor(total * r.fl(0.3, 0.8))
	m.AddConstraint("cap", knap, LE, spm-total)
	for e := 0; e < ne; e++ {
		i, j := r.intn(nl), r.intn(nl)
		if i == j {
			j = (j + 1) % nl
		}
		w := r.fl(0.5, 30) // conflict miss weight, strictly positive
		var L Var
		if faithful {
			L = m.AddBinary(fmt.Sprintf("L%d", e))
			m.AddConstraint("", Expr(1, ls[i], 1, ls[j], -1, L), LE, 1)
			m.AddConstraint("", Expr(1, L, -1, ls[i]), LE, 0)
			m.AddConstraint("", Expr(1, L, -1, ls[j]), LE, 0)
		} else {
			L = m.AddContinuous(fmt.Sprintf("L%d", e), 0, 1)
			m.AddConstraint("", Expr(1, ls[i], 1, ls[j], -1, L), LE, 1)
		}
		obj = obj.Add(w, L)
	}
	// Occasionally pin an l the way core pins oversized traces.
	if r.intn(3) == 0 {
		v := ls[r.intn(nl)]
		pin := float64(r.intn(2))
		m.SetBounds(v, pin, pin)
	}
	m.SetObjective(obj.AddConst(r.fl(0, 100)), Minimize)
	return m
}

// buildMultiModel assembles a multi-region-shaped instance: continuous
// placement l_i plus binary region assignments a_is tied by the equality
// l_i + Σ_s a_is = 1, with one capacity row per region (the shape
// core/multi.go emits).
func buildMultiModel(r *casaRNG, nt, ns int) *Model {
	m := NewModel()
	obj := LinExpr{}
	caps := make([]LinExpr, ns)
	for i := 0; i < nt; i++ {
		l := m.AddContinuous(fmt.Sprintf("l%d", i), 0, 1)
		row := Expr(1, l)
		obj = obj.Add(r.fl(0, 50), l) // cached cost
		size := float64(1 + r.intn(8))
		for s := 0; s < ns; s++ {
			a := m.AddBinary(fmt.Sprintf("a%d_%d", i, s))
			m.SetBranchPriority(a, 1)
			row = row.Add(1, a)
			caps[s] = caps[s].Add(size, a)
			obj = obj.Add(r.fl(-30, 10), a)
		}
		m.AddConstraint("", row, EQ, 1)
	}
	for s := range caps {
		m.AddConstraint("", caps[s], LE, float64(4+r.intn(12)))
	}
	m.SetObjective(obj, Minimize)
	return m
}

// solverCombos enumerates all feature on/off combinations.
func solverCombos() []Options {
	var out []Options
	for mask := 0; mask < 8; mask++ {
		out = append(out, Options{
			DisablePresolve:  mask&1 != 0,
			DisableWarmStart: mask&2 != 0,
			DisableHeuristic: mask&4 != 0,
		})
	}
	return out
}

func comboName(o Options) string {
	return fmt.Sprintf("presolve=%v warm=%v heur=%v",
		!o.DisablePresolve, !o.DisableWarmStart, !o.DisableHeuristic)
}

// checkCombosAgainst solves m under every feature combination and
// compares status/objective against the reference solution; it also
// verifies each returned point is feasible and evaluates to the reported
// objective.
func checkCombosAgainst(t *testing.T, trial int, m *Model, want *Solution) {
	t.Helper()
	for _, o := range solverCombos() {
		got, err := Solve(context.Background(), m, o)
		if err != nil {
			t.Fatalf("trial %d (%s): Solve: %v", trial, comboName(o), err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d (%s): status %v, want %v", trial, comboName(o), got.Status, want.Status)
		}
		if want.Status != Optimal {
			continue
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6*math.Max(1, math.Abs(want.Objective)) {
			t.Fatalf("trial %d (%s): objective %.9g, want %.9g",
				trial, comboName(o), got.Objective, want.Objective)
		}
		if len(got.X) != m.NumVars() {
			t.Fatalf("trial %d (%s): X has %d values, want %d", trial, comboName(o), len(got.X), m.NumVars())
		}
		if !feasibleIn(m, got.X) {
			t.Fatalf("trial %d (%s): returned point infeasible: %v", trial, comboName(o), got.X)
		}
		if v := Eval(m.obj, got.X); math.Abs(v-got.Objective) > 1e-6*math.Max(1, math.Abs(v)) {
			t.Fatalf("trial %d (%s): objective %g does not match point value %g",
				trial, comboName(o), got.Objective, v)
		}
		for _, j := range m.integerVars() {
			if frac := math.Abs(got.X[j] - math.Round(got.X[j])); frac > 1e-6 {
				t.Fatalf("trial %d (%s): integer var %s = %g", trial, comboName(o), m.names[j], got.X[j])
			}
		}
	}
}

func TestCASAFaithfulShapeMatchesBruteForce(t *testing.T) {
	r := casaRNG(0x9e3779b97f4a7c15)
	for trial := 0; trial < 40; trial++ {
		nl := 3 + r.intn(6) // 3..8 traces
		ne := r.intn(5)     // 0..4 conflict edges; all-binary stays <= 24
		m := buildCASAModel(&r, nl, ne, true)
		want, err := SolveBruteForce(context.Background(), m)
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}
		checkCombosAgainst(t, trial, m, want)
	}
}

func TestCASATightShapeCombosAgree(t *testing.T) {
	// Tight models have free-floating continuous L's, which brute force
	// cannot enumerate; the all-features-off configuration (dense
	// from-scratch simplex, plain DFS) is the reference instead, and the
	// integral l's determine the optimal L's, so the objectives must
	// coincide exactly across combinations.
	r := casaRNG(0xdeadbeefcafef00d)
	for trial := 0; trial < 40; trial++ {
		nl := 4 + r.intn(9) // 4..12 traces
		ne := r.intn(9)     // 0..8 conflict edges
		m := buildCASAModel(&r, nl, ne, false)
		ref, err := Solve(context.Background(), m, Options{DisablePresolve: true, DisableWarmStart: true, DisableHeuristic: true})
		if err != nil {
			t.Fatalf("trial %d: reference solve: %v", trial, err)
		}
		checkCombosAgainst(t, trial, m, ref)
	}
}

func TestCASAMultiRegionShapeCombosAgree(t *testing.T) {
	r := casaRNG(0x0123456789abcdef)
	for trial := 0; trial < 25; trial++ {
		nt := 2 + r.intn(4) // 2..5 traces
		ns := 1 + r.intn(3) // 1..3 scratchpad regions
		m := buildMultiModel(&r, nt, ns)
		ref, err := Solve(context.Background(), m, Options{DisablePresolve: true, DisableWarmStart: true, DisableHeuristic: true})
		if err != nil {
			t.Fatalf("trial %d: reference solve: %v", trial, err)
		}
		checkCombosAgainst(t, trial, m, ref)
	}
}

func TestBruteForceTooManyBinariesErrors(t *testing.T) {
	m := NewModel()
	e := LinExpr{}
	for i := 0; i < 25; i++ {
		e = e.Add(1, m.AddBinary(""))
	}
	m.AddConstraint("c", e, LE, 12)
	m.SetObjective(e, Maximize)
	if _, err := SolveBruteForce(context.Background(), m); err == nil {
		t.Fatal("brute force accepted 25 binaries; want an error, not a panic")
	}
}
