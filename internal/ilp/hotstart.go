package ilp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// Cross-cell hot starts. A solved cell leaves behind two kinds of
// reusable solver state beyond its incumbent value (the cutoff of
// incremental.go):
//
//   - its final simplex basis: for a neighboring model that shares
//     variable and row structure, the donor basis is a far better
//     starting point than the all-slack crash basis — reduced costs are
//     independent of the right-hand side, so an optimal basis of the
//     donor is exactly dual feasible for a sibling that differs only in
//     RHS, and near-feasible for one that differs in a few rows;
//   - its branching statistics: per-variable pseudocosts (average
//     objective gain per unit of fractionality, up and down) observed in
//     the donor's branch & bound tree, which seed the recipient's
//     variable selection so the first branchings are informed instead of
//     blind.
//
// Both travel in a HotStart, keyed by variable and constraint NAMES in
// the original model space (presolve preserves variable names and
// records row origins, so reduced-space state maps back out). Name
// keying is what makes transfer robust across neighboring cells whose
// models overlap without being identical: shared columns map, missing
// ones fall back to slacks, extra ones are ignored.
//
// Exactness: a transferred basis only changes the simplex's starting
// point, never its termination conditions — installBasis (factor.go)
// either establishes a fully dual-feasible basis or resets to the cold
// crash basis, and the dual simplex then converges to an optimum of the
// same LP either way. Pseudocost seeding only reorders branching;
// reduced-cost fixing (solve.go) only fixes variables that provably
// cannot move in ANY optimal solution given a known-feasible cutoff.
//
// Counters: casa_ilp_basis_reuse_total fires when a donor basis is
// successfully installed; casa_ilp_basis_repair_pivots_total accumulates
// the dual-repair pivots those installs needed;
// casa_ilp_pseudocost_transfers_total fires when donor pseudocosts seed
// a solve; casa_ilp_rhs_grown_rejects_total counts session RHS patches
// rejected because the capacity grew (incremental.go).

var (
	mBasisReuse     = obs.GetCounter("casa_ilp_basis_reuse_total")
	mBasisRepair    = obs.GetCounter("casa_ilp_basis_repair_pivots_total")
	mPseudoTransfer = obs.GetCounter("casa_ilp_pseudocost_transfers_total")
	mRCFixed        = obs.GetCounter("casa_ilp_reduced_cost_fixed_total")
)

// PCStat is one side of a variable's pseudocost: the summed per-unit
// objective gain over N branching observations.
type PCStat struct {
	Sum float64
	N   int
}

// Pseudocosts holds per-variable branching statistics by variable name:
// the average objective degradation per unit of fractionality when
// branching the variable up (toward its ceiling) or down.
type Pseudocosts struct {
	Up   map[string]PCStat
	Down map[string]PCStat
}

// BasisSnapshot is a simplex basis in name space: which structural
// columns are basic, which rows have their slack basic, and which
// nonbasic structural columns rest at their upper bound. Nonbasic slack
// placement is not recorded — a slack's finite bound is forced by its
// row relation.
type BasisSnapshot struct {
	BasicVars []string
	BasicRows []string
	AtUpper   map[string]bool
}

// HotStart is the transferable solver state of a completed solve.
// Solve returns one on proven-optimal incremental-mode results
// (Solution.HotStart) and accepts one in Options.HotStart; both are
// ignored when the incremental layer is off.
type HotStart struct {
	Basis  *BasisSnapshot
	Pseudo *Pseudocosts
}

// rowNameOf returns the original-space name of reduced row i, or ""
// for rows synthesized by presolve substitution (those cannot map
// across models).
func rowNameOf(i int, pr *presolveResult, orig *Model) string {
	if pr == nil {
		return orig.cons[i].Name
	}
	oi := pr.rowOrig[i]
	if oi < 0 {
		return ""
	}
	return orig.cons[oi].Name
}

// buildHotStart snapshots the engine's final basis plus the run's
// pseudocost arrays into original name space. w is the (possibly
// reduced) model the engine ran on; pr maps its rows back to orig.
func buildHotStart(f *fsx, w *Model, pr *presolveResult, orig *Model, pc *pcTable) *HotStart {
	snap := &BasisSnapshot{AtUpper: make(map[string]bool)}
	for _, bj := range f.basis {
		if bj < f.n {
			snap.BasicVars = append(snap.BasicVars, w.names[bj])
		} else if name := rowNameOf(bj-f.n, pr, orig); name != "" {
			snap.BasicRows = append(snap.BasicRows, name)
		}
	}
	for j := 0; j < f.n; j++ {
		if f.status[j] == nbUpper {
			snap.AtUpper[w.names[j]] = true
		}
	}
	hs := &HotStart{Basis: snap}
	if pc != nil && pc.observed {
		ps := &Pseudocosts{Up: make(map[string]PCStat), Down: make(map[string]PCStat)}
		for j := range pc.up {
			if pc.up[j].N > 0 {
				ps.Up[w.names[j]] = pc.up[j]
			}
			if pc.down[j].N > 0 {
				ps.Down[w.names[j]] = pc.down[j]
			}
		}
		hs.Pseudo = ps
	}
	return hs
}

// mapHotBasis translates a donor basis snapshot into engine index space
// for w: basic[i] is the column occupying basis position i (structural
// index, or n+row for a slack), atUpper the nonbasic structural
// placements. Donor entries that name no column or row of w are
// dropped; rows of w the donor does not cover get their own slack, the
// always-valid filler. Reports ok=false only when the donor claims more
// basic columns than w has rows — a structural mismatch no repair pass
// fixes cheaply.
func mapHotBasis(snap *BasisSnapshot, w *Model, pr *presolveResult, orig *Model) (basic []int, atUpper []bool, ok bool) {
	n, m := w.NumVars(), len(w.cons)
	colOf := make(map[string]int, n)
	for j, name := range w.names {
		colOf[name] = j
	}
	rowOf := make(map[string]int, m)
	for i := range w.cons {
		if name := rowNameOf(i, pr, orig); name != "" {
			rowOf[name] = i
		}
	}
	inBasis := make([]bool, n+m)
	count := 0
	for _, name := range snap.BasicVars {
		if j, found := colOf[name]; found && !inBasis[j] {
			inBasis[j] = true
			count++
		}
	}
	for _, name := range snap.BasicRows {
		if i, found := rowOf[name]; found && !inBasis[n+i] {
			inBasis[n+i] = true
			count++
		}
	}
	if count > m {
		return nil, nil, false
	}
	// Fill uncovered positions with slacks of rows whose slack is not yet
	// basic, in row order (deterministic).
	for i := 0; i < m && count < m; i++ {
		if !inBasis[n+i] {
			inBasis[n+i] = true
			count++
		}
	}
	if count != m {
		return nil, nil, false
	}
	basic = make([]int, 0, m)
	for j := 0; j < n+m; j++ {
		if inBasis[j] {
			basic = append(basic, j)
		}
	}
	atUpper = make([]bool, n)
	for j := 0; j < n; j++ {
		if inBasis[j] {
			continue
		}
		name := w.names[j]
		if snap.AtUpper[name] && !math.IsInf(w.hi[j], 1) {
			atUpper[j] = true
		}
	}
	return basic, atUpper, true
}

// BasisInfo describes the factored dual simplex's final basis for one
// model's LP relaxation: the basic-column partition (structural vs
// slack) and the factorization shape (peeled triangle, dense bump,
// eta-file depth). cmd/dump renders it for offline debugging of basis
// transfer mismatches.
type BasisInfo struct {
	// Status is the LP relaxation's outcome.
	Status Status
	// Vars and Rows are the model dimensions.
	Vars, Rows int
	// BasicStructural and BasicSlacks partition the basis.
	BasicStructural, BasicSlacks int
	// Peeled is the number of singleton columns the block-triangular
	// factorization peeled; BumpK the dense bump dimension; EtaDepth the
	// product-form eta count accumulated since the last refactorization.
	Peeled, BumpK, EtaDepth int
	// Iters is the simplex pivot count of the analysis solve.
	Iters int
	// BasicVars lists the basic structural columns by name, sorted.
	BasicVars []string
}

// AnalyzeBasis solves m's LP relaxation on the factored dual simplex
// engine and reports the final basis partition and factorization shape.
// The model is solved cold (no presolve, no hot start) so the report
// describes the formulation itself, not a particular transfer.
func AnalyzeBasis(m *Model, opt Options) (*BasisInfo, error) {
	opt = opt.withDefaults()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	f := newFSX(m, opt.Tol)
	if f == nil {
		return nil, fmt.Errorf("ilp: model admits no dual-feasible crash basis")
	}
	st := f.solve(2000 + 50*(f.n+f.m))
	info := &BasisInfo{Status: st, Vars: f.n, Rows: f.m, Iters: f.iterCount()}
	info.Peeled, info.BumpK, info.EtaDepth = f.factorStats()
	for _, bj := range f.basis {
		if bj < f.n {
			info.BasicStructural++
			info.BasicVars = append(info.BasicVars, m.names[bj])
		} else {
			info.BasicSlacks++
		}
	}
	sort.Strings(info.BasicVars)
	return info, nil
}

// pcTable is the run-local pseudocost store over w's variables.
type pcTable struct {
	up, down []PCStat
	observed bool // at least one local observation or transferred stat
}

func newPCTable(n int) *pcTable {
	return &pcTable{up: make([]PCStat, n), down: make([]PCStat, n)}
}

// seed installs transferred donor statistics by variable name.
// Reports whether anything was seeded.
func (t *pcTable) seed(ps *Pseudocosts, w *Model) bool {
	if ps == nil {
		return false
	}
	seeded := false
	for j, name := range w.names {
		if st, found := ps.Up[name]; found && st.N > 0 {
			t.up[j] = st
			seeded = true
		}
		if st, found := ps.Down[name]; found && st.N > 0 {
			t.down[j] = st
			seeded = true
		}
	}
	if seeded {
		t.observed = true
	}
	return seeded
}

// observe records one branching outcome: branching variable j with
// fractional part frac gained gain objective units in the up (ceil) or
// down (floor) child.
func (t *pcTable) observe(j int, frac float64, up bool, gain float64) {
	if gain < 0 {
		gain = 0
	}
	if up {
		t.up[j].Sum += gain / (1 - frac)
		t.up[j].N++
	} else {
		t.down[j].Sum += gain / frac
		t.down[j].N++
	}
	t.observed = true
}

// score rates branching on variable j at fractional part frac with the
// standard pseudocost product rule. Variables without observations use
// the table-wide average; with an empty table both sides average to 1
// and the score degenerates to frac·(1−frac) — exactly the legacy
// most-fractional order (both are monotone in the distance to the
// nearest integer, with identical ties).
func (t *pcTable) score(j int, frac float64) float64 {
	avg := func(stats []PCStat, st PCStat) float64 {
		if st.N > 0 {
			return st.Sum / float64(st.N)
		}
		sum, n := 0.0, 0
		for _, s := range stats {
			if s.N > 0 {
				sum += s.Sum / float64(s.N)
				n++
			}
		}
		if n > 0 {
			return sum / float64(n)
		}
		return 1
	}
	down := avg(t.down, t.down[j]) * frac
	up := avg(t.up, t.up[j]) * (1 - frac)
	return math.Max(down, 1e-12) * math.Max(up, 1e-12)
}
