package ilp

import (
	"context"
	"math"
	"testing"
)

func TestPresolveFixesUnconstrainedColumns(t *testing.T) {
	// min x - y with x,y in [0,1] and no rows: dual fixing pins x at 0
	// and y at 1; presolve solves the model outright.
	m := NewModel()
	x := m.AddContinuous("x", 0, 1)
	y := m.AddContinuous("y", 0, 1)
	m.SetObjective(Expr(1, x, -1, y), Minimize)
	pr := presolve(m, 1e-9)
	if pr.status != Optimal {
		t.Fatalf("status = %v, want optimal", pr.status)
	}
	got := pr.postsolve(nil, m.NumVars())
	if got[x] != 0 || got[y] != 1 {
		t.Fatalf("postsolve = %v, want [0 1]", got)
	}
}

func TestPresolveDropsRedundantRow(t *testing.T) {
	// x + y <= 5 can never bind for x,y in [0,1]: the row must go, and
	// dual fixing then finishes the instance.
	m := NewModel()
	x := m.AddBinary("x")
	y := m.AddBinary("y")
	m.AddConstraint("slack", Expr(1, x, 1, y), LE, 5)
	m.SetObjective(Expr(2, x, 3, y), Minimize)
	pr := presolve(m, 1e-9)
	if pr.rowsDropped == 0 {
		t.Error("redundant row not dropped")
	}
	if pr.status != Optimal {
		t.Fatalf("status = %v, want optimal", pr.status)
	}
	got := pr.postsolve(nil, m.NumVars())
	if got[x] != 0 || got[y] != 0 {
		t.Fatalf("postsolve = %v, want [0 0]", got)
	}
}

func TestPresolveDetectsInfeasibleActivity(t *testing.T) {
	// x + y >= 3 is impossible for two binaries.
	m := NewModel()
	x := m.AddBinary("x")
	y := m.AddBinary("y")
	m.AddConstraint("c", Expr(1, x, 1, y), GE, 3)
	m.SetObjective(Expr(1, x), Minimize)
	if pr := presolve(m, 1e-9); pr.status != Infeasible {
		t.Fatalf("status = %v, want infeasible", pr.status)
	}
}

func TestPresolveIntegerBoundRounding(t *testing.T) {
	// 2x = 1 forces x = 0.5; rounding the integer bounds inward crosses
	// them, proving integer infeasibility without any simplex work.
	m := NewModel()
	x := m.AddBinary("x")
	m.AddConstraint("c", Expr(2, x), EQ, 1)
	m.SetObjective(Expr(1, x), Minimize)
	if pr := presolve(m, 1e-9); pr.status != Infeasible {
		t.Fatalf("status = %v, want infeasible", pr.status)
	}
}

func TestPresolveTightensAndFixesImpliedBinaries(t *testing.T) {
	// cap row: 3x + 3y <= 4 with an extra row forcing x = 1 leaves no
	// room for y: bound tightening fixes y = 0 and the whole model
	// presolves away.
	m := NewModel()
	x := m.AddBinary("x")
	y := m.AddBinary("y")
	m.AddConstraint("pin", Expr(1, x), GE, 1)
	m.AddConstraint("cap", Expr(3, x, 3, y), LE, 4)
	m.SetObjective(Expr(-5, x, -1, y), Minimize)
	pr := presolve(m, 1e-9)
	if pr.status != Optimal {
		t.Fatalf("status = %v, want optimal", pr.status)
	}
	got := pr.postsolve(nil, m.NumVars())
	if got[x] != 1 || got[y] != 0 {
		t.Fatalf("postsolve = %v, want [1 0]", got)
	}
}

func TestPresolveSingletonEqualitySubstitution(t *testing.T) {
	// z appears only in x + z = 3 (z continuous in [0,10]): presolve
	// substitutes z away; postsolve must reconstruct z = 3 - x.
	m := NewModel()
	x := m.AddBinary("x")
	z := m.AddContinuous("z", 0, 10)
	m.AddConstraint("tie", Expr(1, x, 1, z), EQ, 3)
	m.AddConstraint("keep", Expr(1, x), LE, 1)
	m.SetObjective(Expr(-4, x, 1, z), Minimize)
	pr := presolve(m, 1e-9)
	if pr.colsSubst == 0 {
		t.Fatal("singleton column not substituted")
	}
	sol, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// min -4x + (3-x) => x=1, z=2, obj=-2.
	if sol.Status != Optimal || math.Abs(sol.Objective-(-2)) > 1e-9 {
		t.Fatalf("got %v obj=%g, want optimal -2", sol.Status, sol.Objective)
	}
	if sol.Value(x) != 1 || math.Abs(sol.Value(z)-2) > 1e-9 {
		t.Fatalf("x=%g z=%g, want 1, 2", sol.Value(x), sol.Value(z))
	}
}

func TestPresolveLinearizationImpliedByFixedDecisions(t *testing.T) {
	// The CASA pattern the issue calls out: once the l's are fixed, the
	// linearization variable L (continuous, one tight row, positive
	// objective weight) is implied and must vanish in presolve.
	m := NewModel()
	l1 := m.AddBinary("l1")
	l2 := m.AddBinary("l2")
	L := m.AddContinuous("L", 0, 1)
	m.SetBounds(l1, 1, 1)
	m.SetBounds(l2, 1, 1)
	m.AddConstraint("lin", Expr(1, l1, 1, l2, -1, L), LE, 1)
	m.SetObjective(Expr(3, l1, 4, l2, 10, L), Minimize)
	pr := presolve(m, 1e-9)
	if pr.status != Optimal {
		t.Fatalf("status = %v, want optimal (everything implied)", pr.status)
	}
	x := pr.postsolve(nil, m.NumVars())
	if x[l1] != 1 || x[l2] != 1 || x[L] != 1 {
		t.Fatalf("postsolve = %v, want [1 1 1]", x)
	}
	if got := Eval(m.obj, x); math.Abs(got-17) > 1e-9 {
		t.Fatalf("objective = %g, want 17", got)
	}
}

func TestPresolvePreservesBranchPriorities(t *testing.T) {
	m := NewModel()
	l := m.AddBinary("l")
	m.SetBranchPriority(l, 1)
	keep := m.AddBinary("keep")
	m.AddConstraint("c", Expr(1, l, 1, keep), LE, 1)
	m.SetObjective(Expr(-1, l, -1, keep), Minimize)
	pr := presolve(m, 1e-9)
	if pr.status != needsSolve || pr.reduced == nil {
		t.Fatalf("expected a reduced model, got status %v", pr.status)
	}
	for j, orig := range pr.varOf {
		if pr.reduced.prio[j] != m.prio[orig] {
			t.Fatalf("priority lost for %s", m.names[orig])
		}
	}
}
