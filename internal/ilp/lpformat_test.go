package ilp

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestParseLPKnapsack(t *testing.T) {
	src := `\ a classic knapsack
Maximize
 obj: 60 x1 + 100 x2 + 120 x3
Subject To
 cap: 10 x1 + 20 x2 + 30 x3 <= 50
Binary
 x1 x2 x3
End
`
	m, err := ParseLP(src)
	if err != nil {
		t.Fatalf("ParseLP: %v", err)
	}
	if m.NumVars() != 3 || m.NumConstraints() != 1 {
		t.Fatalf("vars=%d cons=%d", m.NumVars(), m.NumConstraints())
	}
	sol, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, 220) {
		t.Fatalf("got %v %g, want optimal 220", sol.Status, sol.Objective)
	}
}

func TestParseLPBoundsForms(t *testing.T) {
	src := `Minimize
 obj: x + y + z + w
Subject To
 c1: x + y + z + w >= 1
Bounds
 -2 <= x <= 8
 y >= 3
 z <= 5
 w free
End
`
	m, err := ParseLP(src)
	if err != nil {
		t.Fatalf("ParseLP: %v", err)
	}
	get := func(name string) (float64, float64) {
		for i := 0; i < m.NumVars(); i++ {
			if m.VarName(Var(i)) == name {
				return m.Bounds(Var(i))
			}
		}
		t.Fatalf("no var %q", name)
		return 0, 0
	}
	if lo, hi := get("x"); lo != -2 || hi != 8 {
		t.Errorf("x bounds [%g,%g]", lo, hi)
	}
	if lo, hi := get("y"); lo != 3 || !math.IsInf(hi, 1) {
		t.Errorf("y bounds [%g,%g]", lo, hi)
	}
	if lo, hi := get("z"); lo != 0 || hi != 5 {
		t.Errorf("z bounds [%g,%g]", lo, hi)
	}
	if lo, hi := get("w"); !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Errorf("w bounds [%g,%g]", lo, hi)
	}
}

func TestParseLPSignsAndConstants(t *testing.T) {
	src := `Minimize
 obj: - 2 x + 3 y - z
Subject To
 c1: x - y + 2 z <= 10
 c2: - x + y >= - 5
 c3: x + y + z = 4
End
`
	m, err := ParseLP(src)
	if err != nil {
		t.Fatalf("ParseLP: %v", err)
	}
	cons := m.Constraints()
	if len(cons) != 3 {
		t.Fatalf("%d constraints", len(cons))
	}
	if cons[1].RHS != -5 {
		t.Errorf("c2 RHS = %g, want -5", cons[1].RHS)
	}
	if cons[2].Rel != EQ {
		t.Errorf("c3 rel = %v", cons[2].Rel)
	}
}

func TestParseLPGenerals(t *testing.T) {
	src := `Maximize
 obj: x + y
Subject To
 c: 2 x + 3 y <= 12
Bounds
 x <= 4
General
 x y
End
`
	m, err := ParseLP(src)
	if err != nil {
		t.Fatalf("ParseLP: %v", err)
	}
	sol, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, 5) {
		t.Fatalf("got %v %g, want 5", sol.Status, sol.Objective)
	}
}

func TestParseLPErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"Foo\n obj: x\n",      // no sense
		"Minimize\n obj: x\n", // no subject-to
		"Minimize\n obj: x\nSubject To\n c1: x <= y\nEnd\n", // var on RHS
		"Minimize\n obj: x\nSubject To\n c1: x ? 1\nEnd\n",  // bad operator
	}
	for i, src := range cases {
		if _, err := ParseLP(src); err == nil {
			t.Errorf("case %d: accepted invalid LP", i)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	y := m.AddVar("y", Integer, 0, 7)
	z := m.AddContinuous("z", -1, 4)
	w := m.AddVar("w", Continuous, math.Inf(-1), math.Inf(1))
	m.AddConstraint("c1", Expr(1, x, 2, y, -0.5, z), LE, 9)
	m.AddConstraint("c2", Expr(1, z, 1, w), GE, -3)
	m.AddConstraint("c3", Expr(1, x, 1, y), EQ, 2)
	m.SetObjective(Expr(3, x, -2, y, 1, z, 0.25, w), Minimize)

	var sb strings.Builder
	if err := WriteLP(&sb, m); err != nil {
		t.Fatalf("WriteLP: %v", err)
	}
	m2, err := ParseLP(sb.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	if m2.NumVars() != m.NumVars() || m2.NumConstraints() != m.NumConstraints() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			m2.NumVars(), m2.NumConstraints(), m.NumVars(), m.NumConstraints())
	}
	// The round-tripped model must solve to the same optimum.
	s1, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Solve(context.Background(), m2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Status != s2.Status {
		t.Fatalf("status %v vs %v", s1.Status, s2.Status)
	}
	if s1.Status == Optimal && !almostEq(s1.Objective, s2.Objective) {
		t.Fatalf("objective %g vs %g\n%s", s1.Objective, s2.Objective, sb.String())
	}
}

func TestWriteLPRendersZeroObjective(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, 1)
	m.AddConstraint("c", Expr(1, x), LE, 1)
	m.SetObjective(LinExpr{}, Minimize)
	var sb strings.Builder
	if err := WriteLP(&sb, m); err != nil {
		t.Fatalf("WriteLP: %v", err)
	}
	if !strings.Contains(sb.String(), "obj: 0") {
		t.Errorf("zero objective rendered as %q", sb.String())
	}
}
