package ilp

import (
	"fmt"
	"io"
	"math"

	"repro/internal/obs"
)

// Solver effort metrics, resolved once. Every Solve records into the
// default registry so run reports can attribute ILP work per study.
var (
	mSolves   = obs.GetCounter("casa_ilp_solves_total")
	mNodes    = obs.GetCounter("casa_ilp_nodes_total")
	mIters    = obs.GetCounter("casa_ilp_simplex_iters_total")
	mBranches = obs.GetCounter("casa_ilp_branches_total")
)

// Options tunes the solver.
type Options struct {
	// MaxNodes caps the number of branch & bound nodes explored
	// (default 200000). When the cap is hit with an incumbent in hand the
	// solution is returned with Status == Feasible.
	MaxNodes int
	// Tol is the simplex numerical tolerance (default 1e-9).
	Tol float64
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Trace, when non-nil, receives solver progress lines: one per new
	// incumbent and one every TraceEvery nodes. The per-node cost when
	// nil is a single pointer test.
	Trace io.Writer
	// TraceEvery is the node interval of periodic progress lines
	// (default 1000).
	TraceEvery int
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.Tol <= 0 {
		o.Tol = defaultTol
	}
	if o.IntTol <= 0 {
		o.IntTol = 1e-6
	}
	if o.TraceEvery <= 0 {
		o.TraceEvery = 1000
	}
	return o
}

// Solution is the result of Solve or SolveLP.
type Solution struct {
	// Status classifies the outcome.
	Status Status
	// Objective is the objective value of X (valid for Optimal/Feasible).
	Objective float64
	// X holds the variable values indexed by Var.
	X []float64
	// Nodes is the number of branch & bound nodes processed.
	Nodes int
	// Branches is the number of branchings performed (nodes split into
	// floor/ceil children).
	Branches int
	// SimplexIters is the total simplex pivot count across all LP solves.
	SimplexIters int
}

// Value returns the solution value of v.
func (s *Solution) Value(v Var) float64 { return s.X[v] }

// SolveLP solves the continuous relaxation of the model (integrality
// dropped).
func SolveLP(m *Model, opt Options) (*Solution, error) {
	opt = opt.withDefaults()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out := solveLP(m, m.lo, m.hi, opt.Tol)
	sol := &Solution{Status: out.status, Objective: out.obj, X: out.x, SimplexIters: out.iters}
	mSolves.Inc()
	mIters.Add(int64(out.iters))
	return sol, nil
}

// Solve optimizes the model exactly with branch & bound over its integer
// and binary variables, using LP-relaxation bounds. For a model without
// integer variables it is equivalent to SolveLP.
func Solve(m *Model, opt Options) (*Solution, error) {
	opt = opt.withDefaults()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	intVars := m.integerVars()

	// Sign convention: compare everything in minimization space.
	sign := 1.0
	if m.sense == Maximize {
		sign = -1
	}

	type node struct {
		lo, hi []float64
	}
	root := node{lo: append([]float64(nil), m.lo...), hi: append([]float64(nil), m.hi...)}
	stack := []node{root}

	var (
		incumbent    []float64
		incumbentVal = math.Inf(1) // in minimization space
		nodes        int
		branches     int
		iters        int
		sawFeasibleL bool // any LP-feasible node seen (for status reporting)
		hitLimit     bool
	)
	record := func(sol *Solution) *Solution {
		mSolves.Inc()
		mNodes.Add(int64(sol.Nodes))
		mIters.Add(int64(sol.SimplexIters))
		mBranches.Add(int64(sol.Branches))
		return sol
	}

	for len(stack) > 0 {
		if nodes >= opt.MaxNodes {
			hitLimit = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		if opt.Trace != nil && nodes%opt.TraceEvery == 0 {
			inc := "-"
			if incumbent != nil {
				inc = fmt.Sprintf("%.6g", sign*incumbentVal)
			}
			fmt.Fprintf(opt.Trace, "ilp: node=%d stack=%d branches=%d iters=%d incumbent=%s\n",
				nodes, len(stack), branches, iters, inc)
		}

		out := solveLP(m, nd.lo, nd.hi, opt.Tol)
		iters += out.iters
		switch out.status {
		case Infeasible, Aborted:
			continue
		case Unbounded:
			// The relaxation is unbounded. With integer variables this
			// still certifies an unbounded or pathological model; report
			// it rather than guessing.
			return record(&Solution{Status: Unbounded, Nodes: nodes, Branches: branches, SimplexIters: iters}), nil
		}
		sawFeasibleL = true
		bound := sign * out.obj
		if bound >= incumbentVal-1e-9 {
			continue // cannot improve on the incumbent
		}

		// Find the branch variable: among fractional integer variables,
		// take the highest branch-priority class, most fractional within
		// it. Priorities let formulations steer branching toward genuine
		// decision variables (CASA: the l's) instead of derived ones
		// (the linearization L's, which the l's imply).
		branchVar := -1
		worst := opt.IntTol
		bestPrio := math.MinInt
		for _, j := range intVars {
			v := out.x[j]
			frac := math.Abs(v - math.Round(v))
			if frac <= opt.IntTol {
				continue
			}
			p := m.prio[j]
			if p > bestPrio || (p == bestPrio && frac > worst) {
				bestPrio = p
				worst = frac
				branchVar = j
			}
		}
		if branchVar < 0 {
			// Integral: new incumbent. Snap integer values exactly.
			x := append([]float64(nil), out.x...)
			for _, j := range intVars {
				x[j] = math.Round(x[j])
			}
			val := sign * Eval(m.obj, x)
			if val < incumbentVal {
				incumbentVal = val
				incumbent = x
				if opt.Trace != nil {
					fmt.Fprintf(opt.Trace, "ilp: incumbent %.6g at node %d (iters=%d)\n",
						sign*incumbentVal, nodes, iters)
				}
			}
			continue
		}

		branches++
		v := out.x[branchVar]
		floorNode := node{lo: append([]float64(nil), nd.lo...), hi: append([]float64(nil), nd.hi...)}
		floorNode.hi[branchVar] = math.Floor(v)
		ceilNode := node{lo: append([]float64(nil), nd.lo...), hi: append([]float64(nil), nd.hi...)}
		ceilNode.lo[branchVar] = math.Ceil(v)
		// Explore the side nearer the fractional value first (push last).
		if v-math.Floor(v) >= 0.5 {
			stack = append(stack, floorNode, ceilNode)
		} else {
			stack = append(stack, ceilNode, floorNode)
		}
	}

	sol := &Solution{Nodes: nodes, Branches: branches, SimplexIters: iters}
	switch {
	case incumbent != nil && !hitLimit:
		sol.Status = Optimal
	case incumbent != nil:
		sol.Status = Feasible
	case hitLimit:
		sol.Status = Aborted
	case !sawFeasibleL:
		sol.Status = Infeasible
	default:
		// LP-feasible nodes existed but none produced an integral point
		// and the tree is exhausted: integer-infeasible.
		sol.Status = Infeasible
	}
	if incumbent != nil {
		sol.X = incumbent
		sol.Objective = Eval(m.obj, incumbent)
	}
	if opt.Trace != nil {
		fmt.Fprintf(opt.Trace, "ilp: done status=%v nodes=%d branches=%d iters=%d obj=%.6g\n",
			sol.Status, sol.Nodes, sol.Branches, sol.SimplexIters, sol.Objective)
	}
	return record(sol), nil
}

// SolveBruteForce exhaustively enumerates all assignments of the model's
// binary variables (continuous variables are not supported) and returns
// the best feasible assignment. It exists to validate the branch & bound
// solver in tests and panics beyond 24 binaries.
func SolveBruteForce(m *Model) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var bins []int
	for i, k := range m.kinds {
		switch k {
		case Binary:
			bins = append(bins, i)
		case Integer, Continuous:
			if m.lo[i] == m.hi[i] {
				continue // fixed is fine
			}
			if k == Integer && m.lo[i] >= 0 && m.hi[i] <= 1 {
				bins = append(bins, i)
				continue
			}
			return nil, fmt.Errorf("ilp: brute force supports binary variables only; %s is %s",
				m.names[i], k)
		}
	}
	if len(bins) > 24 {
		panic("ilp.SolveBruteForce: too many binaries")
	}
	sign := 1.0
	if m.sense == Maximize {
		sign = -1
	}
	x := make([]float64, m.NumVars())
	for i := range x {
		x[i] = m.lo[i]
	}
	best := math.Inf(1)
	var bestX []float64
	for mask := 0; mask < 1<<len(bins); mask++ {
		for bi, j := range bins {
			if mask&(1<<bi) != 0 {
				x[j] = 1
			} else {
				x[j] = 0
			}
		}
		ok := true
		for _, c := range m.cons {
			v := Eval(c.Expr, x)
			switch c.Rel {
			case LE:
				ok = v <= c.RHS+feasTol
			case GE:
				ok = v >= c.RHS-feasTol
			case EQ:
				ok = math.Abs(v-c.RHS) <= feasTol
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		val := sign * Eval(m.obj, x)
		if val < best {
			best = val
			bestX = append([]float64(nil), x...)
		}
	}
	if bestX == nil {
		return &Solution{Status: Infeasible}, nil
	}
	return &Solution{Status: Optimal, Objective: Eval(m.obj, bestX), X: bestX}, nil
}
