package ilp

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Solver effort metrics, resolved once. Every Solve records into the
// default registry so run reports can attribute ILP work per study.
var (
	mSolves    = obs.GetCounter("casa_ilp_solves_total")
	mNodes     = obs.GetCounter("casa_ilp_nodes_total")
	mIters     = obs.GetCounter("casa_ilp_simplex_iters_total")
	mBranches  = obs.GetCounter("casa_ilp_branches_total")
	mPruned    = obs.GetCounter("casa_ilp_nodes_pruned_total")
	mWarm      = obs.GetCounter("casa_ilp_warm_starts_total")
	mFallback  = obs.GetCounter("casa_ilp_dense_fallbacks_total")
	mPreRows   = obs.GetCounter("casa_ilp_presolve_rows_dropped_total")
	mPreCols   = obs.GetCounter("casa_ilp_presolve_cols_removed_total")
	mHeuristic = obs.GetCounter("casa_ilp_heuristic_incumbents_total")
	mDegraded  = obs.GetCounter("casa_solve_degraded_total")
)

// Options tunes the solver.
type Options struct {
	// MaxNodes caps the number of branch & bound nodes explored
	// (default 200000). When the cap is hit with an incumbent in hand the
	// solution is returned with Status == Feasible.
	MaxNodes int
	// Tol is the simplex numerical tolerance (default 1e-9). It also
	// scales the incumbent-pruning tolerance, which is relative to the
	// incumbent objective's magnitude.
	Tol float64
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Trace, when non-nil, receives solver progress lines: one per new
	// incumbent and one every TraceEvery nodes. The per-node cost when
	// nil is a single pointer test.
	Trace io.Writer
	// TraceEvery is the node interval of periodic progress lines
	// (default 1000).
	TraceEvery int
	// Budget caps the wall-clock time of the branch & bound search
	// (0 = unlimited). When it expires the best incumbent found so far is
	// returned with Status == Feasible, Degraded set, and the optimality
	// Gap reported; with no incumbent in hand the result is Aborted (still
	// not an error) so callers can fall back to a heuristic. The context
	// passed to Solve composes with the budget: whichever ends first stops
	// the search the same way.
	Budget time.Duration

	// DisablePresolve skips the root presolve (fixed-variable
	// substitution, redundant-row elimination, bound tightening, dual
	// fixing). Intended for testing and diagnosis.
	DisablePresolve bool
	// DisableWarmStart solves every node LP with the dense from-scratch
	// two-phase simplex instead of the warm-started revised dual simplex.
	// Intended for testing and diagnosis.
	DisableWarmStart bool
	// DisableHeuristic skips the root diving heuristic that seeds the
	// incumbent before the tree search starts. Intended for testing and
	// diagnosis.
	DisableHeuristic bool

	// Cutoff, when non-nil, is the objective value (in the model's own
	// sense and space) of a solution known to be feasible, transferred
	// from a neighboring solve. Subtrees whose relaxation bound cannot
	// strictly beat it are pruned, and node LPs stop mid-solve once
	// their objective passes it. The cutoff never changes the returned
	// solution: only strictly-worse subtrees are pruned (with a
	// tolerance margin), so an optimal point always survives, and a
	// cutoff that proves infeasible (a bad transfer) triggers a cold
	// re-solve without it. Ignored when the incremental layer is
	// disabled (IncrementalEnabled).
	Cutoff *float64
	// Session, when non-nil, reuses presolve reductions across solves of
	// structurally identical models (see Session). Ignored when the
	// incremental layer is disabled.
	Session *Session
	// HotStart, when non-nil, carries a donor solve's final basis and
	// branching statistics (see HotStart). The basis hot-starts the
	// factored dual simplex instead of the crash basis; the pseudocosts
	// seed branching variable selection; and together with Cutoff the
	// root LP's reduced costs fix variables that provably cannot move in
	// any optimal solution. None of it changes the returned solution —
	// a basis that cannot be repaired to dual feasibility falls back to
	// the cold path. Ignored when the incremental layer is disabled.
	HotStart *HotStart
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.Tol <= 0 {
		o.Tol = defaultTol
	}
	if o.IntTol <= 0 {
		o.IntTol = 1e-6
	}
	if o.TraceEvery <= 0 {
		o.TraceEvery = 1000
	}
	return o
}

// Solution is the result of Solve or SolveLP.
type Solution struct {
	// Status classifies the outcome.
	Status Status
	// Objective is the objective value of X (valid for Optimal/Feasible).
	Objective float64
	// X holds the variable values indexed by Var.
	X []float64
	// Nodes is the number of branch & bound nodes processed (nodes whose
	// LP relaxation was solved; nodes pruned by bound before any LP work
	// are not counted).
	Nodes int
	// Branches is the number of branchings performed (nodes split into
	// floor/ceil children).
	Branches int
	// SimplexIters is the total simplex pivot count across all LP solves.
	SimplexIters int
	// Degraded marks an anytime result: the search stopped early (wall-
	// clock budget, context cancellation, node limit, or an injected
	// fault) before proving optimality. A degraded Feasible solution is
	// the best incumbent with Gap bounding how far from optimal it can
	// be; a degraded Aborted result carries no solution at all.
	Degraded bool
	// DegradedReason says why the search stopped early: "deadline",
	// "canceled", "node-limit" or "fault:solver-deadline". Empty when
	// Degraded is false.
	DegradedReason string
	// Gap is the relative optimality gap of a degraded Feasible solution:
	// (incumbent - best open bound) / max(1, |incumbent|), clamped to be
	// non-negative. Zero for proven-optimal results and for degraded
	// results with no incumbent.
	Gap float64
	// HotStart is the transferable solver state of this solve — final
	// simplex basis and accumulated pseudocosts — set on proven-optimal
	// incremental-mode results for use as a neighbor's Options.HotStart.
	HotStart *HotStart
}

// Value returns the solution value of v.
func (s *Solution) Value(v Var) float64 { return s.X[v] }

// ctxErr reports the context's error, tolerating a nil context (treated
// as context.Background()).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// SolveLP solves the continuous relaxation of the model (integrality
// dropped). A context that is already done stops the solve with its
// error before any simplex work starts.
func SolveLP(ctx context.Context, m *Model, opt Options) (*Solution, error) {
	opt = opt.withDefaults()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out := solveLP(m, m.lo, m.hi, opt.Tol)
	sol := &Solution{Status: out.status, Objective: out.obj, X: out.x, SimplexIters: out.iters}
	mSolves.Inc()
	mIters.Add(int64(out.iters))
	return sol, nil
}

// Solve optimizes the model exactly with branch & bound over its integer
// and binary variables, using LP-relaxation bounds. For a model without
// integer variables it is equivalent to SolveLP.
//
// The solve pipeline: a root presolve shrinks the model (presolve.go);
// node relaxations run on a bounded-variable revised dual simplex that
// warm-starts from the basis left by the previous node (basis.go), with
// the dense two-phase simplex as fallback; a root diving heuristic seeds
// the incumbent so pruning bites from the first node; the tree itself is
// explored best-bound-first with depth-first plunging.
//
// Solve is anytime: when ctx is canceled, its deadline passes, or
// opt.Budget expires, the search stops and returns the best incumbent
// (Status == Feasible, Degraded set, Gap reported) or, with no incumbent,
// Status == Aborted — never an error. Errors are reserved for invalid
// models.
func Solve(ctx context.Context, m *Model, opt Options) (*Solution, error) {
	opt = opt.withDefaults()
	if err := m.Validate(); err != nil {
		return nil, err
	}

	done := func(sol *Solution) (*Solution, error) {
		if opt.Trace != nil {
			deg := ""
			if sol.Degraded {
				deg = fmt.Sprintf(" degraded=%s gap=%.4g", sol.DegradedReason, sol.Gap)
			}
			fmt.Fprintf(opt.Trace, "ilp: done status=%v nodes=%d branches=%d iters=%d obj=%.6g%s\n",
				sol.Status, sol.Nodes, sol.Branches, sol.SimplexIters, sol.Objective, deg)
		}
		mSolves.Inc()
		mNodes.Add(int64(sol.Nodes))
		mIters.Add(int64(sol.SimplexIters))
		mBranches.Add(int64(sol.Branches))
		if sol.Degraded {
			mDegraded.Inc()
		}
		return sol, nil
	}

	if fault.Hit(fault.SolverDeadline) {
		// Injected fault: the budget "expired" before the first node, the
		// worst case of the anytime contract — no incumbent, caller must
		// fall back.
		return done(&Solution{Status: Aborted, Degraded: true, DegradedReason: "fault:solver-deadline"})
	}

	incMode := IncrementalEnabled()

	var pr *presolveResult
	work := m
	if !opt.DisablePresolve {
		if opt.Session != nil && incMode {
			pr = opt.Session.presolveFor(m, opt.Tol)
		} else {
			pr = presolve(m, opt.Tol)
		}
		mPreRows.Add(int64(pr.rowsDropped))
		mPreCols.Add(int64(pr.colsFixed + pr.colsSubst))
		switch pr.status {
		case Infeasible:
			return done(&Solution{Status: Infeasible})
		case Optimal:
			// Presolve eliminated every variable: the instance is solved
			// by replaying the reduction stack.
			x := pr.postsolve(nil, m.NumVars())
			return done(&Solution{Status: Optimal, X: x, Objective: Eval(m.obj, x)})
		}
		work = pr.reduced
	}

	s := &bbState{orig: m, w: work, pr: pr, opt: opt, ctx: ctx, incMode: incMode}
	if opt.Cutoff != nil && incMode {
		// Map the cutoff from the original objective space into w's
		// minimization space. Postsolve is affine, so the two spaces
		// differ by a constant offset; probe it at two points and keep
		// the cutoff only if they agree (they always should — the check
		// guards exactness against future presolve changes).
		signO, signW := 1.0, 1.0
		if m.sense == Maximize {
			signO = -1
		}
		if work.sense == Maximize {
			signW = -1
		}
		offsetAt := func(v float64) float64 {
			x := make([]float64, work.NumVars())
			for i := range x {
				x[i] = v
			}
			full := x
			if pr != nil {
				full = pr.postsolve(x, m.NumVars())
			}
			return signO*Eval(m.obj, full) - signW*Eval(work.obj, x)
		}
		off0 := offsetAt(0)
		if math.Abs(off0-offsetAt(1)) <= 1e-6*math.Max(1, math.Abs(off0)) {
			s.hasCutoff = true
			s.cutoffW = signO*(*opt.Cutoff) - off0
			s.cutMargin = 1e-6 * math.Max(1, math.Abs(s.cutoffW))
			mWarmCellHits.Inc()
		}
	}
	s.run()
	mPruned.Add(int64(s.pruned))
	mWarm.Add(int64(s.warm))
	mFallback.Add(int64(s.fallbacks))
	mHeuristic.Add(int64(s.heuristics))
	mRCFixed.Add(int64(s.rcFixed))

	stopped := s.hitLimit || s.stopReason != ""
	reason := s.stopReason
	if reason == "" && s.hitLimit {
		reason = "node-limit"
	}

	sol := &Solution{Nodes: s.nodes, Branches: s.branches, SimplexIters: s.iters}
	switch {
	case s.unbounded:
		// The relaxation is unbounded. With integer variables this still
		// certifies an unbounded or pathological model; report it rather
		// than guessing.
		sol.Status = Unbounded
		return done(sol)
	case s.incumbent != nil && !stopped:
		sol.Status = Optimal
	case s.incumbent != nil:
		sol.Status = Feasible
		sol.Degraded = true
		sol.DegradedReason = reason
		if lb := s.openBound; !math.IsInf(lb, 0) {
			gap := (s.incumbentVal - lb) / math.Max(1, math.Abs(s.incumbentVal))
			sol.Gap = math.Max(0, gap)
		}
	case stopped:
		sol.Status = Aborted
		sol.Degraded = true
		sol.DegradedReason = reason
	default:
		if s.hasCutoff {
			// A transferred cutoff asserts that a feasible point exists;
			// an "infeasible" outcome can only mean the transfer was bad
			// (donor mismatch). Drop it and solve cold — correctness never
			// depends on the cutoff being right.
			opt.Cutoff = nil
			return Solve(ctx, m, opt)
		}
		// Either no node was LP-feasible, or LP-feasible nodes existed but
		// none produced an integral point and the tree is exhausted:
		// infeasible either way.
		sol.Status = Infeasible
	}
	if s.incMode && s.fsxEng != nil && sol.Status == Optimal {
		// Publish this solve's warm state for neighboring cells. Only
		// proven-optimal results donate: a degraded basis or pseudocost
		// table depends on where the clock cut the search.
		sol.HotStart = buildHotStart(s.fsxEng, s.w, s.pr, m, s.pc)
	}
	if s.incumbent != nil {
		x := s.incumbent
		if pr != nil {
			x = pr.postsolve(x, m.NumVars())
		}
		sol.X = x
		sol.Objective = Eval(m.obj, x)
	}
	return done(sol)
}

// bbNode is one open branch & bound node: a box of variable bounds plus
// the parent relaxation bound used for best-bound ordering.
type bbNode struct {
	lo, hi []float64
	bound  float64 // parent LP objective, minimization space
	seq    int     // FIFO tie-break

	// Pseudocost bookkeeping: the branching that created this node
	// (pvar < 0 for the root), its fractional part at the parent, and
	// the branch direction. The gain of this node's LP bound over the
	// parent's is credited to pvar once, when the node LP solves.
	pvar  int
	pfrac float64
	pup   bool
}

// nodeEngine is a warm-started LP engine persisting across branch &
// bound nodes: rsx (dense basis inverse, the legacy path) or fsx
// (factored basis with objective-limit early stop, the incremental
// path).
type nodeEngine interface {
	setBounds(lo, hi []float64)
	solve(maxIter int) Status
	values() []float64
	iterCount() int
	dims() (n, m int)
	setObjLimit(z float64)
}

// bbState is the working state of one branch & bound run over the
// (possibly presolve-reduced) model w.
type bbState struct {
	orig *Model
	w    *Model
	pr   *presolveResult
	opt  Options

	sign    float64    // w's minimization-space sign
	eng     nodeEngine // warm-started engine, nil => dense per-node solves
	intVars []int

	incMode   bool    // incremental layer active (engine choice, cutoff)
	hasCutoff bool    // a transferred cutoff is installed
	cutoffW   float64 // cutoff in w's minimization space
	cutMargin float64 // tolerance margin: prune only strictly beyond it

	fsxEng  *fsx     // the factored engine when s.eng is one (hot starts)
	pc      *pcTable // pseudocost store, nil outside incremental mode
	rcFixed int      // root reduced-cost fixings against the cutoff

	incumbent    []float64 // in w's variable space
	incumbentVal float64   // minimization space

	heap []bbNode // open nodes, min (bound, seq) at the top

	nodes, branches, iters           int
	pruned, warm, fallbacks          int
	heuristics, engSolves, seq       int
	sawFeasible, hitLimit, unbounded bool

	ctx        context.Context
	deadline   time.Time // wall-clock stop from opt.Budget (zero = none)
	stopReason string    // "deadline" or "canceled" when the search was cut short
	openBound  float64   // best minimization-space bound still open at the stop
}

// stopCheck reports why the search must stop now ("deadline",
// "canceled"), or "" to keep going. It is called once per node, so its
// cost — a context poll and a clock read — is amortized over a full LP
// solve.
func (s *bbState) stopCheck() string {
	if err := ctxErr(s.ctx); err != nil {
		if err == context.DeadlineExceeded {
			return "deadline"
		}
		return "canceled"
	}
	if !s.deadline.IsZero() && !time.Now().Before(s.deadline) {
		return "deadline"
	}
	return ""
}

// recordOpenBound captures the tightest still-open relaxation bound at
// the moment the search stops; the optimality gap of the incumbent is
// measured against it.
func (s *bbState) recordOpenBound(cur *bbNode) {
	lb := math.Inf(1)
	if cur != nil && s.nodes > 0 {
		// cur's bound is its parent's LP objective — valid except for the
		// root node, whose bound field was never set.
		lb = cur.bound
	}
	if len(s.heap) > 0 && s.heap[0].bound < lb {
		lb = s.heap[0].bound
	}
	s.openBound = lb
}

func (s *bbState) run() {
	s.sign = 1
	if s.w.sense == Maximize {
		s.sign = -1
	}
	s.intVars = s.w.integerVars()
	s.incumbentVal = math.Inf(1)
	s.openBound = math.Inf(1)
	if s.opt.Budget > 0 {
		s.deadline = time.Now().Add(s.opt.Budget)
	}
	if !s.opt.DisableWarmStart {
		// Assign through explicit nil checks: a typed-nil engine stored in
		// the interface would defeat the s.eng != nil dense-fallback tests.
		if s.incMode {
			if f := newFSX(s.w, s.opt.Tol); f != nil {
				s.eng = f
				s.fsxEng = f
			}
		}
		if s.eng == nil {
			if r := newRSX(s.w, s.opt.Tol); r != nil {
				s.eng = r
			}
		}
	}
	if s.incMode {
		s.pc = newPCTable(s.w.NumVars())
		if hs := s.opt.HotStart; hs != nil {
			if s.pc.seed(hs.Pseudo, s.w) {
				mPseudoTransfer.Inc()
			}
			if hs.Basis != nil && s.fsxEng != nil {
				// Hot-start the factored engine from the donor basis mapped
				// through shared column/row names. A mapping or repair
				// failure leaves the engine on its crash basis — the cold
				// path — and goes uncounted.
				if basic, atUpper, ok := mapHotBasis(hs.Basis, s.w, s.pr, s.orig); ok {
					if pivots, installed := s.fsxEng.installBasis(basic, atUpper); installed {
						mBasisReuse.Inc()
						mBasisRepair.Add(int64(pivots))
					}
				}
			}
		}
	}

	cur := &bbNode{
		lo:   append([]float64(nil), s.w.lo...),
		hi:   append([]float64(nil), s.w.hi...),
		pvar: -1,
	}
	for {
		if cur == nil {
			cur = s.nextNode()
			if cur == nil {
				return
			}
		}
		if reason := s.stopCheck(); reason != "" {
			s.stopReason = reason
			s.recordOpenBound(cur)
			return
		}
		if s.nodes >= s.opt.MaxNodes {
			s.hitLimit = true
			s.recordOpenBound(cur)
			return
		}
		cur = s.processNode(cur)
		if s.unbounded {
			return
		}
	}
}

// pruneable reports whether a minimization-space bound cannot improve on
// the incumbent, within a tolerance relative to the incumbent magnitude.
func (s *bbState) pruneable(bound float64) bool {
	if s.hasCutoff && bound > s.cutoffW+s.cutMargin {
		// The cutoff is a known-feasible value: a subtree strictly worse
		// than it cannot hold the optimum. Equal-or-better subtrees are
		// kept, so an optimal point always survives.
		return true
	}
	if s.incumbent == nil {
		return false
	}
	return bound >= s.incumbentVal-s.opt.Tol*math.Max(1, math.Abs(s.incumbentVal))
}

// solveNodeLP solves one node relaxation: warm-started dual simplex when
// the engine is available, dense two-phase simplex otherwise or when the
// engine aborts.
func (s *bbState) solveNodeLP(lo, hi []float64) (Status, []float64) {
	if s.eng != nil {
		s.eng.setBounds(lo, hi)
		if s.incMode {
			// Early-stop limit: the tighter of the transferred cutoff and
			// the incumbent-pruning threshold. An LP whose objective
			// passes it can only end in a pruned node.
			lim := math.Inf(1)
			if s.hasCutoff {
				lim = s.cutoffW + s.cutMargin
			}
			if s.incumbent != nil {
				if t := s.incumbentVal - s.opt.Tol*math.Max(1, math.Abs(s.incumbentVal)); t < lim {
					lim = t
				}
			}
			s.eng.setObjLimit(lim)
		}
		before := s.eng.iterCount()
		en, em := s.eng.dims()
		st := s.eng.solve(2000 + 50*(em+en))
		s.iters += s.eng.iterCount() - before
		if s.engSolves > 0 {
			s.warm++
		}
		s.engSolves++
		if st != Aborted {
			if st == Optimal {
				return Optimal, s.eng.values()
			}
			return st, nil
		}
		s.fallbacks++
	}
	out := solveLP(s.w, lo, hi, s.opt.Tol)
	s.iters += out.iters
	return out.status, out.x
}

// feasibleIn verifies x against w's constraints and bounds with a
// tolerance scaled to each row's magnitude; used to screen incumbent
// candidates against numerical drift in the warm-started basis.
func feasibleIn(w *Model, x []float64) bool {
	for j := range x {
		if x[j] < w.lo[j]-1e-6 || x[j] > w.hi[j]+1e-6 {
			return false
		}
	}
	for _, c := range w.cons {
		v := Eval(c.Expr, x)
		tol := 1e-6 * math.Max(1, math.Abs(c.RHS))
		switch c.Rel {
		case LE:
			if v > c.RHS+tol {
				return false
			}
		case GE:
			if v < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(v-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// userObjective maps a w-space point to the original model's objective
// value (trace display only).
func (s *bbState) userObjective(x []float64) float64 {
	if s.pr != nil {
		return Eval(s.orig.obj, s.pr.postsolve(x, s.orig.NumVars()))
	}
	return Eval(s.orig.obj, x)
}

// tryIncumbent snaps x's integer values, verifies feasibility, and
// installs it as the incumbent when it improves. Reports whether x was
// accepted as feasible (improving or not).
func (s *bbState) tryIncumbent(x []float64, heuristic bool) bool {
	cand := append([]float64(nil), x...)
	for _, j := range s.intVars {
		cand[j] = math.Round(cand[j])
	}
	if !feasibleIn(s.w, cand) {
		return false
	}
	val := s.sign * Eval(s.w.obj, cand)
	if val < s.incumbentVal {
		s.incumbentVal = val
		s.incumbent = cand
		if heuristic {
			s.heuristics++
		}
		if s.opt.Trace != nil {
			tag := ""
			if heuristic {
				tag = "heuristic, "
			}
			fmt.Fprintf(s.opt.Trace, "ilp: incumbent %.6g at node %d (%siters=%d)\n",
				s.userObjective(cand), s.nodes, tag, s.iters)
		}
	}
	return true
}

// processNode solves one node and returns the child to plunge into, or
// nil when the node closed (pruned, infeasible, or integral).
func (s *bbState) processNode(nd *bbNode) *bbNode {
	s.nodes++
	if s.opt.Trace != nil && s.nodes%s.opt.TraceEvery == 0 {
		inc := "-"
		if s.incumbent != nil {
			inc = fmt.Sprintf("%.6g", s.userObjective(s.incumbent))
		}
		fmt.Fprintf(s.opt.Trace, "ilp: node=%d stack=%d branches=%d iters=%d incumbent=%s\n",
			s.nodes, len(s.heap), s.branches, s.iters, inc)
	}

	st, x := s.solveNodeLP(nd.lo, nd.hi)
	fromEngine := s.eng != nil
	for {
		switch st {
		case Infeasible, Aborted:
			return nil
		case stObjLimit:
			// The node LP's objective already passed the cutoff/incumbent
			// limit mid-solve; the finished bound could only be worse.
			s.pruned++
			return nil
		case Unbounded:
			s.unbounded = true
			return nil
		}
		bound := s.sign * Eval(s.w.obj, x)
		s.sawFeasible = true
		if s.pc != nil && nd.pvar >= 0 {
			// Credit the branching that created this node with the bound
			// gain its LP realized; cleared so the dense-fallback retry
			// below cannot double-count.
			s.pc.observe(nd.pvar, nd.pfrac, nd.pup, bound-nd.bound)
			nd.pvar = -1
		}
		if s.pruneable(bound) {
			s.pruned++
			return nil
		}
		if s.nodes == 1 && s.incMode && s.hasCutoff && fromEngine && s.fsxEng != nil && st == Optimal {
			// Root reduced-cost fixing against the transferred cutoff,
			// while the engine still holds the root LP's reduced costs.
			s.fixByReducedCost(nd, bound)
		}

		// Branch variable: among fractional integer variables, the
		// highest branch-priority class, then (incremental mode) the best
		// pseudocost product score — which, with no observations in the
		// table, reduces exactly to the legacy most-fractional rule —
		// or (legacy mode) most fractional within it.
		// Priorities let formulations steer branching toward genuine
		// decision variables (CASA: the l's) instead of derived ones
		// (the linearization L's, which the l's imply).
		branchVar := -1
		bestPrio := math.MinInt
		if s.pc != nil {
			bestScore := 0.0
			for _, j := range s.intVars {
				if math.Abs(x[j]-math.Round(x[j])) <= s.opt.IntTol {
					continue
				}
				p := s.w.prio[j]
				sc := s.pc.score(j, x[j]-math.Floor(x[j]))
				if p > bestPrio || (p == bestPrio && sc > bestScore) {
					bestPrio = p
					bestScore = sc
					branchVar = j
				}
			}
		} else {
			worst := s.opt.IntTol
			for _, j := range s.intVars {
				frac := math.Abs(x[j] - math.Round(x[j]))
				if frac <= s.opt.IntTol {
					continue
				}
				p := s.w.prio[j]
				if p > bestPrio || (p == bestPrio && frac > worst) {
					bestPrio = p
					worst = frac
					branchVar = j
				}
			}
		}
		if branchVar < 0 {
			if s.tryIncumbent(x, false) {
				return nil
			}
			if !fromEngine {
				// The dense simplex produced an infeasible "integral"
				// point; numerically hopeless, close the node.
				return nil
			}
			// Warm-basis drift produced an integral point that fails the
			// feasibility screen: re-solve this node from scratch.
			s.fallbacks++
			out := solveLP(s.w, nd.lo, nd.hi, s.opt.Tol)
			s.iters += out.iters
			st, x, fromEngine = out.status, out.x, false
			continue
		}

		// Root diving heuristic: fix the most-integral fractional
		// variable and re-solve, walking the warm basis down to an
		// integral point that seeds the incumbent.
		if s.nodes == 1 && s.eng != nil && !s.opt.DisableHeuristic {
			s.dive(nd, x)
			if s.pruneable(bound) {
				// The heuristic already matches the root bound: optimal.
				s.pruned++
				return nil
			}
		}

		s.branches++
		v := x[branchVar]
		frac := v - math.Floor(v)
		floorNode := &bbNode{lo: append([]float64(nil), nd.lo...), hi: append([]float64(nil), nd.hi...), bound: bound,
			pvar: branchVar, pfrac: frac, pup: false}
		floorNode.hi[branchVar] = math.Floor(v)
		ceilNode := &bbNode{lo: append([]float64(nil), nd.lo...), hi: append([]float64(nil), nd.hi...), bound: bound,
			pvar: branchVar, pfrac: frac, pup: true}
		ceilNode.lo[branchVar] = math.Ceil(v)
		// Plunge into the side nearer the fractional value; the other
		// child joins the best-bound heap.
		near, far := ceilNode, floorNode
		if v-math.Floor(v) < 0.5 {
			near, far = floorNode, ceilNode
		}
		s.pushNode(far)
		return near
	}
}

// fixByReducedCost tightens the root box against a transferred cutoff:
// a nonbasic integer variable whose reduced cost says moving one unit
// off its bound already pushes the LP bound strictly past the
// known-feasible cutoff cannot move in ANY optimal solution (the
// bound+|d| value lower-bounds every feasible point with the variable
// shifted), so it is fixed at its resting bound. Children inherit the
// tightened box. Runs only while the engine still holds the root LP's
// basis.
func (s *bbState) fixByReducedCost(nd *bbNode, bound float64) {
	f := s.fsxEng
	lim := s.cutoffW + s.cutMargin
	for _, j := range s.intVars {
		if nd.hi[j]-nd.lo[j] < 0.5 {
			continue // already fixed
		}
		d := f.reducedCost(j)
		switch f.status[j] {
		case nbLower:
			if d > 0 && bound+d > lim {
				nd.hi[j] = nd.lo[j]
				s.rcFixed++
			}
		case nbUpper:
			if d < 0 && bound-d > lim {
				nd.lo[j] = nd.hi[j]
				s.rcFixed++
			}
		}
	}
}

// dive runs the root incumbent heuristic: repeatedly fix the fractional
// integer variable closest to integrality at its rounded value and
// re-solve the (warm) relaxation; on infeasibility retry once at the
// opposite value. For a knapsack-shaped model the root LP already sorts
// variables by value density, so this walk lands on the greedy packing.
func (s *bbState) dive(nd *bbNode, rootX []float64) {
	lo := append([]float64(nil), nd.lo...)
	hi := append([]float64(nil), nd.hi...)
	x := rootX
	for step := 0; step < 2*len(s.intVars)+4; step++ {
		if s.stopCheck() != "" {
			// Out of budget mid-dive: the run loop will stop the search; do
			// not burn more LP solves on the heuristic.
			return
		}
		j, frac := -1, 2.0
		for _, iv := range s.intVars {
			f := math.Abs(x[iv] - math.Round(x[iv]))
			if f <= s.opt.IntTol {
				continue
			}
			if f < frac {
				frac, j = f, iv
			}
		}
		if j < 0 {
			s.tryIncumbent(x, true)
			return
		}
		v := math.Round(x[j])
		v = math.Max(nd.lo[j], math.Min(nd.hi[j], v))
		lo[j], hi[j] = v, v
		st, nx := s.solveNodeLP(lo, hi)
		if st != Optimal {
			alt := v + 1
			if v > x[j] {
				alt = v - 1
			}
			if alt < nd.lo[j] || alt > nd.hi[j] {
				return
			}
			lo[j], hi[j] = alt, alt
			st, nx = s.solveNodeLP(lo, hi)
			if st != Optimal {
				return
			}
		}
		x = nx
	}
}

// pushNode adds an open node to the best-bound heap.
func (s *bbState) pushNode(nd *bbNode) {
	nd.seq = s.seq
	s.seq++
	s.heap = append(s.heap, *nd)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(i, p) {
			break
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

func (s *bbState) heapLess(a, b int) bool {
	if s.heap[a].bound != s.heap[b].bound {
		return s.heap[a].bound < s.heap[b].bound
	}
	return s.heap[a].seq < s.heap[b].seq
}

// nextNode pops the best-bound open node, discarding the whole frontier
// when even the best bound cannot beat the incumbent.
func (s *bbState) nextNode() *bbNode {
	if len(s.heap) == 0 {
		return nil
	}
	if s.pruneable(s.heap[0].bound) {
		// The heap minimum is already dominated; so is everything else.
		s.pruned += len(s.heap)
		s.heap = s.heap[:0]
		return nil
	}
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s.heap) && s.heapLess(l, best) {
			best = l
		}
		if r < len(s.heap) && s.heapLess(r, best) {
			best = r
		}
		if best == i {
			break
		}
		s.heap[i], s.heap[best] = s.heap[best], s.heap[i]
		i = best
	}
	return &top
}

// SolveBruteForce exhaustively enumerates all assignments of the model's
// binary variables (continuous variables are not supported) and returns
// the best feasible assignment. It exists to validate the branch & bound
// solver in tests and refuses models beyond 24 binaries. Cancellation of
// ctx aborts the enumeration with the context's error.
func SolveBruteForce(ctx context.Context, m *Model) (*Solution, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var bins []int
	for i, k := range m.kinds {
		switch k {
		case Binary:
			if m.lo[i] == m.hi[i] {
				continue // pinned; the init loop sets x[i] = lo
			}
			bins = append(bins, i)
		case Integer, Continuous:
			if m.lo[i] == m.hi[i] {
				continue // fixed is fine
			}
			if k == Integer && m.lo[i] >= 0 && m.hi[i] <= 1 {
				bins = append(bins, i)
				continue
			}
			return nil, fmt.Errorf("ilp: brute force supports binary variables only; %s is %s",
				m.names[i], k)
		}
	}
	if len(bins) > 24 {
		return nil, fmt.Errorf("ilp: brute force supports at most 24 binaries, model has %d", len(bins))
	}
	sign := 1.0
	if m.sense == Maximize {
		sign = -1
	}
	x := make([]float64, m.NumVars())
	for i := range x {
		x[i] = m.lo[i]
	}
	best := math.Inf(1)
	var bestX []float64
	for mask := 0; mask < 1<<len(bins); mask++ {
		if mask&0xfff == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		for bi, j := range bins {
			if mask&(1<<bi) != 0 {
				x[j] = 1
			} else {
				x[j] = 0
			}
		}
		ok := true
		for _, c := range m.cons {
			v := Eval(c.Expr, x)
			switch c.Rel {
			case LE:
				ok = v <= c.RHS+feasTol
			case GE:
				ok = v >= c.RHS-feasTol
			case EQ:
				ok = math.Abs(v-c.RHS) <= feasTol
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		val := sign * Eval(m.obj, x)
		if val < best {
			best = val
			bestX = append([]float64(nil), x...)
		}
	}
	if bestX == nil {
		return &Solution{Status: Infeasible}, nil
	}
	return &Solution{Status: Optimal, Objective: Eval(m.obj, bestX), X: bestX}, nil
}
