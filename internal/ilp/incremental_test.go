package ilp

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// xorshift for deterministic random instances.
type testRNG uint64

func (r *testRNG) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = testRNG(x)
	return x
}

func (r *testRNG) fl(lo, hi float64) float64 {
	return lo + (hi-lo)*float64(r.next()%10000)/10000
}

// randBinaryModel builds a small random binary program.
func randBinaryModel(r *testRNG) *Model {
	n := 3 + int(r.next()%6)
	nc := 1 + int(r.next()%4)
	m := NewModel()
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = m.AddBinary("")
	}
	obj := LinExpr{}
	for _, v := range vars {
		obj = obj.Add(r.fl(-10, 10), v)
	}
	sense := Minimize
	if r.next()%2 == 0 {
		sense = Maximize
	}
	m.SetObjective(obj, sense)
	for c := 0; c < nc; c++ {
		e := LinExpr{}
		for _, v := range vars {
			e = e.Add(r.fl(0, 5), v)
		}
		rel := []Rel{LE, GE}[r.next()%2]
		m.AddConstraint("", e, rel, r.fl(1, float64(n)*2.5))
	}
	return m
}

func TestIncrementalEnabled(t *testing.T) {
	for _, tc := range []struct {
		val  string
		want bool
	}{
		{"", true}, {"on", true}, {"1", true}, {"yes", true},
		{"off", false}, {"OFF", false}, {"0", false}, {"false", false}, {"False", false},
	} {
		t.Setenv("CASA_INCREMENTAL", tc.val)
		if got := IncrementalEnabled(); got != tc.want {
			t.Errorf("CASA_INCREMENTAL=%q: enabled = %v, want %v", tc.val, got, tc.want)
		}
	}
}

// TestEngineParityRandomized cross-validates the factored engine (fsx,
// incremental on) against the legacy dense-inverse engine (rsx,
// incremental off) on random binary programs.
func TestEngineParityRandomized(t *testing.T) {
	rng := testRNG(987654321)
	for trial := 0; trial < 80; trial++ {
		m := randBinaryModel(&rng)

		t.Setenv("CASA_INCREMENTAL", "off")
		cold, err := Solve(context.Background(), m, Options{})
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		t.Setenv("CASA_INCREMENTAL", "on")
		warm, err := Solve(context.Background(), m, Options{})
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		if cold.Status != warm.Status {
			t.Fatalf("trial %d: status %v (fsx) vs %v (rsx)", trial, warm.Status, cold.Status)
		}
		if cold.Status == Optimal && !almostEq(cold.Objective, warm.Objective) {
			t.Fatalf("trial %d: obj %g (fsx) vs %g (rsx)", trial, warm.Objective, cold.Objective)
		}
	}
}

// TestCutoffExactness checks that a transferred cutoff — at the optimum,
// above it, or wrongly below it — never changes the returned objective.
func TestCutoffExactness(t *testing.T) {
	rng := testRNG(24680)
	for trial := 0; trial < 60; trial++ {
		m := randBinaryModel(&rng)
		base, err := Solve(context.Background(), m, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if base.Status != Optimal {
			continue
		}
		slack := 1.0
		if m.sense == Maximize {
			slack = -1
		}
		for name, cut := range map[string]float64{
			"exact":     base.Objective,
			"loose":     base.Objective + slack, // worse than optimal: weak cutoff
			"too-tight": base.Objective - slack, // asserts a better point than exists
		} {
			cut := cut
			got, err := Solve(context.Background(), m, Options{Cutoff: &cut})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if got.Status != Optimal {
				t.Fatalf("trial %d cutoff=%s: status %v, want optimal", trial, name, got.Status)
			}
			if !almostEq(got.Objective, base.Objective) {
				t.Fatalf("trial %d cutoff=%s: obj %g, want %g", trial, name, got.Objective, base.Objective)
			}
		}
	}
}

// casaLikeModel builds a knapsack with the named capacity row, the shape
// the Session's RHS patching is designed for.
func casaLikeModel(nItems int, capRHS float64) *Model {
	m := NewModel()
	capRow := LinExpr{}
	obj := LinExpr{}
	for i := 0; i < nItems; i++ {
		v := m.AddBinary(fmt.Sprintf("l_%d", i))
		size := float64(1 + (i*7)%5)
		gain := float64(2 + (i*13)%9)
		capRow = capRow.Add(size, v)
		obj = obj.Add(-gain, v)
		// A side constraint so presolve keeps a multi-row structure.
		if i > 0 {
			e := LinExpr{}
			e = e.Add(1, v)
			e = e.Add(1, Var(i-1))
			m.AddConstraint("", e, LE, 2)
		}
	}
	m.AddConstraint("spm_capacity", capRow, LE, capRHS)
	m.SetObjective(obj, Minimize)
	return m
}

// TestSessionPresolveReuse checks the cache: an identical model shares
// the reduction, a smaller capacity patches it, and both yield the same
// optimum as session-less solves.
func TestSessionPresolveReuse(t *testing.T) {
	t.Setenv("CASA_INCREMENTAL", "on")
	reuse := obs.GetCounter("casa_presolve_reuse_total")
	start := reuse.Value() // other tests share the global counter

	sess := NewSession()
	for _, capRHS := range []float64{30, 30, 24, 17, 9} {
		m := casaLikeModel(12, capRHS)
		want, err := Solve(context.Background(), m, Options{})
		if err != nil {
			t.Fatalf("cap=%g cold: %v", capRHS, err)
		}
		before := reuse.Value()
		got, err := Solve(context.Background(), m, Options{Session: sess})
		if err != nil {
			t.Fatalf("cap=%g session: %v", capRHS, err)
		}
		if got.Status != want.Status || !almostEq(got.Objective, want.Objective) {
			t.Fatalf("cap=%g: session solve %v/%g, want %v/%g",
				capRHS, got.Status, got.Objective, want.Status, want.Objective)
		}
		if after := reuse.Value(); capRHS != 30 || before > start {
			// Every call after the first must hit the cache (same structure;
			// equal or shrinking capacity).
			if before == start {
				continue // first call of the loop primed the cache
			}
			if after != before+1 {
				t.Fatalf("cap=%g: reuse counter %d -> %d, want +1", capRHS, before, after)
			}
		}
	}

	// A growing capacity must NOT reuse the shrunk entry via patching.
	grown := casaLikeModel(12, 60)
	want, _ := Solve(context.Background(), grown, Options{})
	got, err := Solve(context.Background(), grown, Options{Session: sess})
	if err != nil {
		t.Fatalf("grown: %v", err)
	}
	if !almostEq(got.Objective, want.Objective) {
		t.Fatalf("grown: session obj %g, want %g", got.Objective, want.Objective)
	}
}

// TestSessionSharedConcurrently hammers one Session from many
// goroutines; correctness is checked per solve and the race detector
// covers the cache.
func TestSessionSharedConcurrently(t *testing.T) {
	t.Setenv("CASA_INCREMENTAL", "on")
	sess := NewSession()
	caps := []float64{30, 28, 24, 20, 17, 12, 9}
	wants := make([]float64, len(caps))
	for i, c := range caps {
		sol, err := Solve(context.Background(), casaLikeModel(12, c), Options{})
		if err != nil || sol.Status != Optimal {
			t.Fatalf("cap=%g: %v / %v", c, err, sol.Status)
		}
		wants[i] = sol.Objective
	}
	errc := make(chan error, 4*len(caps))
	for g := 0; g < 4; g++ {
		go func() {
			for i, c := range caps {
				sol, err := Solve(context.Background(), casaLikeModel(12, c), Options{Session: sess})
				if err != nil {
					errc <- err
					continue
				}
				if sol.Status != Optimal || !almostEq(sol.Objective, wants[i]) {
					errc <- fmt.Errorf("cap=%g: got %v/%g want optimal/%g", c, sol.Status, sol.Objective, wants[i])
					continue
				}
				errc <- nil
			}
		}()
	}
	for i := 0; i < 4*len(caps); i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestWarmCellHitCounter checks the hit counter fires exactly when a
// cutoff is both supplied and the incremental layer is on.
func TestWarmCellHitCounter(t *testing.T) {
	hits := obs.GetCounter("casa_ilp_warm_cell_hits_total")
	m := casaLikeModel(8, 15)
	base, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cut := base.Objective

	t.Setenv("CASA_INCREMENTAL", "on")
	before := hits.Value()
	if _, err := Solve(context.Background(), m, Options{Cutoff: &cut}); err != nil {
		t.Fatal(err)
	}
	if hits.Value() != before+1 {
		t.Fatalf("warm hits %d -> %d, want +1", before, hits.Value())
	}

	t.Setenv("CASA_INCREMENTAL", "off")
	before = hits.Value()
	if _, err := Solve(context.Background(), m, Options{Cutoff: &cut}); err != nil {
		t.Fatal(err)
	}
	if hits.Value() != before {
		t.Fatalf("warm hits moved with incremental off: %d -> %d", before, hits.Value())
	}
}
