package ilp

import (
	"math"
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means a provably optimal solution was found.
	Optimal Status = iota
	// Infeasible means no assignment satisfies the constraints.
	Infeasible
	// Unbounded means the objective can improve without limit.
	Unbounded
	// Feasible means a feasible (integer) solution was found but the node
	// or iteration limit stopped the proof of optimality.
	Feasible
	// Aborted means a limit was hit before any feasible solution was
	// found.
	Aborted

	// stObjLimit (unexported) means the engine proved the relaxation
	// objective exceeds the caller-installed limit and stopped early; the
	// node is pruned without finishing the LP. Only the incremental
	// engine (factor.go) returns it.
	stObjLimit
)

var statusNames = [...]string{
	Optimal:    "optimal",
	Infeasible: "infeasible",
	Unbounded:  "unbounded",
	Feasible:   "feasible",
	Aborted:    "aborted",
	stObjLimit: "obj-limit",
}

// String returns the status name.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return "status?"
}

// lpOutcome is the result of one LP relaxation solve.
type lpOutcome struct {
	status Status
	x      []float64 // values in the original variable space
	obj    float64   // objective in the original (signed) sense
	iters  int
}

const (
	defaultTol = 1e-9
	feasTol    = 1e-7
)

// varMap describes how an original variable maps into simplex columns.
type varMap struct {
	posCol int     // column of the (shifted) positive part
	negCol int     // column of the negative part for free variables, or -1
	shift  float64 // x = y_pos - y_neg + shift
}

// solveLP solves the continuous relaxation of m with the bounds lo/hi
// (overriding the model's) using a dense two-phase primal simplex with
// implicit (bounded-variable) upper-bound handling: upper bounds never
// become tableau rows; nonbasic variables may sit at either bound and
// "bound flips" move them without pivoting. The returned objective
// respects the model's sense.
func solveLP(m *Model, lo, hi []float64, tol float64) lpOutcome {
	if tol <= 0 {
		tol = defaultTol
	}
	n := m.NumVars()

	// Column layout: structural columns first. Lower bounds shift to 0;
	// free variables split into positive and negative parts.
	maps := make([]varMap, n)
	structCols := 0
	for j := 0; j < n; j++ {
		if math.IsInf(lo[j], -1) {
			maps[j] = varMap{posCol: structCols, negCol: structCols + 1}
			structCols += 2
		} else {
			maps[j] = varMap{posCol: structCols, negCol: -1, shift: lo[j]}
			structCols++
		}
	}

	type rowForm struct {
		coef []float64
		rel  Rel
		rhs  float64
	}
	rows := make([]rowForm, 0, len(m.cons))
	addRow := func(expr LinExpr, rel Rel, rhs float64) {
		coef := make([]float64, structCols)
		r := rhs - expr.Const
		for _, t := range expr.Terms {
			vm := maps[t.Var]
			coef[vm.posCol] += t.Coef
			if vm.negCol >= 0 {
				coef[vm.negCol] -= t.Coef
			}
			r -= t.Coef * vm.shift
		}
		rows = append(rows, rowForm{coef: coef, rel: rel, rhs: r})
	}
	for _, c := range m.cons {
		addRow(c.Expr, c.Rel, c.RHS)
	}

	// Normalize RHS ≥ 0 and count auxiliary columns.
	nSlack, nArt := 0, 0
	for i := range rows {
		if rows[i].rhs < 0 {
			for k := range rows[i].coef {
				rows[i].coef[k] = -rows[i].coef[k]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].rel {
			case LE:
				rows[i].rel = GE
			case GE:
				rows[i].rel = LE
			}
		}
		switch rows[i].rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}

	mRows := len(rows)
	totalCols := structCols + nSlack + nArt
	tab := make([][]float64, mRows)
	basis := make([]int, mRows)
	upper := make([]float64, totalCols)
	for j := 0; j < structCols; j++ {
		upper[j] = math.Inf(1)
	}
	for j := 0; j < n; j++ {
		vm := maps[j]
		if vm.negCol >= 0 {
			continue // free split: both parts unbounded above
		}
		upper[vm.posCol] = hi[j] - lo[j]
	}
	for j := structCols; j < totalCols; j++ {
		upper[j] = math.Inf(1)
	}

	slackAt := structCols
	artAt := structCols + nSlack
	artStart := artAt
	for i, rf := range rows {
		row := make([]float64, totalCols+1)
		copy(row, rf.coef)
		row[totalCols] = rf.rhs
		switch rf.rel {
		case LE:
			row[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			basis[i] = artAt
			artAt++
		case EQ:
			row[artAt] = 1
			basis[i] = artAt
			artAt++
		}
		tab[i] = row
	}

	sx := &simplex{
		tab:      tab,
		basis:    basis,
		cols:     totalCols,
		artStart: artStart,
		upper:    upper,
		flipped:  make([]bool, totalCols),
		tol:      tol,
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		c1 := make([]float64, totalCols)
		for j := artStart; j < totalCols; j++ {
			c1[j] = 1
		}
		sx.installObjective(c1)
		if st := sx.iterate(); st == Unbounded {
			// Phase 1 is bounded below by 0; unbounded signals numerical
			// trouble — report infeasible.
			return lpOutcome{status: Infeasible, iters: sx.iters}
		}
		if sx.artificialInfeasibility() > feasTol {
			return lpOutcome{status: Infeasible, iters: sx.iters}
		}
		sx.evictArtificials()
	}

	// Phase 2: minimize the (possibly negated) objective.
	c2 := make([]float64, totalCols)
	sign := 1.0
	if m.sense == Maximize {
		sign = -1
	}
	for _, t := range m.obj.Terms {
		vm := maps[t.Var]
		c2[vm.posCol] += sign * t.Coef
		if vm.negCol >= 0 {
			c2[vm.negCol] -= sign * t.Coef
		}
	}
	sx.forbidArtificials()
	sx.installObjective(c2)
	if st := sx.iterate(); st == Unbounded {
		return lpOutcome{status: Unbounded, iters: sx.iters}
	}

	// Extract the solution: basic columns take their row value, nonbasic
	// columns sit at 0 or (flipped) at their upper bound.
	y := make([]float64, totalCols)
	for j := 0; j < totalCols; j++ {
		if sx.flipped[j] {
			y[j] = sx.upper[j]
		}
	}
	for i, b := range sx.basis {
		v := sx.tab[i][sx.cols]
		if sx.flipped[b] {
			y[b] = sx.upper[b] - v
		} else {
			y[b] = v
		}
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		vm := maps[j]
		x[j] = y[vm.posCol] + vm.shift
		if vm.negCol >= 0 {
			x[j] -= y[vm.negCol]
		}
	}
	return lpOutcome{status: Optimal, x: x, obj: Eval(m.obj, x), iters: sx.iters}
}

// simplex is a dense tableau in "all nonbasic at zero" transformed space:
// a column whose variable currently rests at its upper bound is stored
// negated (flipped), so reduced-cost tests and ratio tests take the
// textbook form. The objective row holds reduced costs for minimization;
// its value cell is maintained for consistency but outcomes are computed
// from the extracted solution.
type simplex struct {
	tab      [][]float64 // mRows x (cols+1)
	objRow   []float64
	basis    []int
	cols     int
	artStart int
	banned   []bool
	upper    []float64
	flipped  []bool
	tol      float64
	iters    int
}

// installObjective sets the cost vector (given in untransformed column
// space) and recomputes reduced costs for the current basis and flips.
func (s *simplex) installObjective(c []float64) {
	s.objRow = make([]float64, s.cols+1)
	for j := 0; j < s.cols; j++ {
		if s.flipped[j] {
			s.objRow[j] = -c[j]
		} else {
			s.objRow[j] = c[j]
		}
	}
	for i, b := range s.basis {
		cb := s.objRow[b]
		if cb == 0 {
			continue
		}
		row := s.tab[i]
		for j := 0; j <= s.cols; j++ {
			s.objRow[j] -= cb * row[j]
		}
	}
}

// artificialInfeasibility sums the values of artificial variables still
// basic after phase 1.
func (s *simplex) artificialInfeasibility() float64 {
	sum := 0.0
	for i, b := range s.basis {
		if b >= s.artStart {
			sum += s.tab[i][s.cols]
		}
	}
	return sum
}

// forbidArtificials prevents artificial columns from re-entering.
func (s *simplex) forbidArtificials() {
	s.banned = make([]bool, s.cols)
	for j := s.artStart; j < s.cols; j++ {
		s.banned[j] = true
	}
}

// iterate runs pivots and bound flips until optimality or unboundedness.
// Dantzig pricing switches to Bland's rule after a burn-in; bound flips
// strictly improve the objective and cannot cycle.
func (s *simplex) iterate() Status {
	maxIters := 400 * (len(s.tab) + s.cols + 10)
	blandAfter := 20 * (len(s.tab) + s.cols + 10)
	for local := 0; ; local++ {
		if local > maxIters {
			// Defensive: Bland's rule precludes cycling, so this would
			// indicate a numerical pathology.
			return Aborted
		}
		e := s.chooseEntering(local > blandAfter)
		if e < 0 {
			return Optimal
		}
		kind, r, _ := s.chooseLeaving(e)
		switch kind {
		case leaveUnbounded:
			return Unbounded
		case leaveFlip:
			s.flipColumn(e)
		case leaveAtZero:
			s.pivot(r, e)
		case leaveAtUpper:
			s.flipBasic(r)
			s.pivot(r, e)
		}
		s.iters++
	}
}

func (s *simplex) chooseEntering(bland bool) int {
	if bland {
		for j := 0; j < s.cols; j++ {
			if s.enterable(j) && s.objRow[j] < -s.tol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -s.tol
	for j := 0; j < s.cols; j++ {
		if s.enterable(j) && s.objRow[j] < bestVal {
			best, bestVal = j, s.objRow[j]
		}
	}
	return best
}

func (s *simplex) enterable(j int) bool {
	if s.banned != nil && s.banned[j] {
		return false
	}
	// Fixed variables (zero range) can never move off their bound.
	return s.upper[j] > s.tol
}

type leaveKind int

const (
	leaveUnbounded leaveKind = iota
	leaveFlip                // entering variable reaches its other bound
	leaveAtZero              // basic variable in row r reaches zero
	leaveAtUpper             // basic variable in row r reaches its upper bound
)

// chooseLeaving runs the bounded-variable ratio test for entering column
// e (increasing from zero in transformed space).
func (s *simplex) chooseLeaving(e int) (leaveKind, int, float64) {
	kind := leaveFlip
	row := -1
	t := s.upper[e] // bound-flip step; may be +inf
	// better reports whether a row candidate with step ti on basic bi
	// should replace the current choice: smaller steps win; on ties, row
	// pivots beat bound flips and Bland's rule (smallest basic index)
	// orders rows.
	better := func(ti float64, bi int) bool {
		if ti < t-s.tol {
			return true
		}
		if ti > t+s.tol {
			return false
		}
		if row < 0 {
			return true
		}
		return bi < s.basis[row]
	}
	for i := range s.tab {
		a := s.tab[i][e]
		bi := s.basis[i]
		switch {
		case a > s.tol:
			// Basic variable decreases toward zero.
			if ti := s.tab[i][s.cols] / a; better(ti, bi) {
				kind, row, t = leaveAtZero, i, ti
			}
		case a < -s.tol && !math.IsInf(s.upper[bi], 1):
			// Basic variable increases toward its upper bound.
			if ti := (s.upper[bi] - s.tab[i][s.cols]) / -a; better(ti, bi) {
				kind, row, t = leaveAtUpper, i, ti
			}
		}
	}
	if row < 0 && math.IsInf(t, 1) {
		return leaveUnbounded, -1, t
	}
	return kind, row, t
}

// flipColumn moves nonbasic column e to its other bound without a pivot:
// substitute y = u - y', negating the column and adjusting every RHS.
func (s *simplex) flipColumn(e int) {
	u := s.upper[e]
	for i := range s.tab {
		row := s.tab[i]
		if row[e] != 0 {
			row[s.cols] -= row[e] * u
			row[e] = -row[e]
		}
	}
	if s.objRow[e] != 0 {
		s.objRow[s.cols] -= s.objRow[e] * u
		s.objRow[e] = -s.objRow[e]
	}
	s.flipped[e] = !s.flipped[e]
}

// flipBasic rewrites row r so its basic variable is measured from its
// upper bound (which it is about to reach), enabling a standard pivot.
func (s *simplex) flipBasic(r int) {
	b := s.basis[r]
	u := s.upper[b]
	row := s.tab[r]
	for j := 0; j <= s.cols; j++ {
		if j == b {
			continue
		}
		row[j] = -row[j]
	}
	row[s.cols] += u // loop negated the RHS; the new value is u - old
	s.flipped[b] = !s.flipped[b]
}

func (s *simplex) pivot(r, e int) {
	pr := s.tab[r]
	pv := pr[e]
	inv := 1 / pv
	for j := 0; j <= s.cols; j++ {
		pr[j] *= inv
	}
	pr[e] = 1 // exactness
	for i := range s.tab {
		if i == r {
			continue
		}
		f := s.tab[i][e]
		if f == 0 {
			continue
		}
		row := s.tab[i]
		for j := 0; j <= s.cols; j++ {
			row[j] -= f * pr[j]
		}
		row[e] = 0
	}
	if f := s.objRow[e]; f != 0 {
		for j := 0; j <= s.cols; j++ {
			s.objRow[j] -= f * pr[j]
		}
		s.objRow[e] = 0
	}
	s.basis[r] = e
}

// evictArtificials pivots zero-level artificial variables out of the basis
// after phase 1 so phase 2 can ignore their columns entirely.
func (s *simplex) evictArtificials() {
	for i := 0; i < len(s.basis); i++ {
		if s.basis[i] < s.artStart {
			continue
		}
		for j := 0; j < s.artStart; j++ {
			if math.Abs(s.tab[i][j]) > s.tol {
				s.pivot(i, j)
				break
			}
		}
		// If no structural column has a nonzero entry the row is
		// redundant; the artificial stays basic at zero, harmless because
		// phase 2 bans it from entering.
	}
}
