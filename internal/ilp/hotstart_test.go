package ilp

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/obs"
)

// knapModel builds a deterministic named binary knapsack with a
// "spm_capacity" row — the same structural shape (named binaries, one
// patchable capacity row) the CASA models have.
func knapModel(n int, cap float64) *Model {
	m := NewModel()
	e := LinExpr{}
	obj := LinExpr{}
	for i := 0; i < n; i++ {
		v := m.AddBinary(fmt.Sprintf("l_%d", i))
		e = e.Add(float64(1+i%7), v)
		obj = obj.Add(float64(3+(i*5)%11), v)
	}
	m.AddConstraint("spm_capacity", e, LE, cap)
	m.SetObjective(obj, Maximize)
	return m
}

// TestInstallBasisRoundTrip snapshots a solved engine's basis and
// reinstalls it on a fresh engine for the same model: the donor basis
// is already optimal, so the install must succeed without any dual
// repair pivots and the re-solve must terminate on the same objective
// almost immediately.
func TestInstallBasisRoundTrip(t *testing.T) {
	m := knapModel(12, 17)
	f := newFSX(m, 0)
	if f == nil {
		t.Fatal("newFSX returned nil")
	}
	if st := f.solve(10000); st != Optimal {
		t.Fatalf("cold solve: %v", st)
	}
	coldIters := f.iterCount()
	snap := buildHotStart(f, m, nil, m, nil)

	g := newFSX(m, 0)
	basic, atUpper, ok := mapHotBasis(snap.Basis, m, nil, m)
	if !ok {
		t.Fatal("mapHotBasis failed on an identical model")
	}
	pivots, installed := g.installBasis(basic, atUpper)
	if !installed {
		t.Fatal("installBasis failed on an identical model")
	}
	if pivots != 0 {
		t.Errorf("round-trip install needed %d repair pivots, want 0", pivots)
	}
	if st := g.solve(10000); st != Optimal {
		t.Fatalf("hot solve: %v", st)
	}
	if g.iterCount() > coldIters {
		t.Errorf("hot solve took %d iters, cold took %d — basis not reused", g.iterCount(), coldIters)
	}
}

// TestHotStartRHSOnlyTransfer pins the soundness core of basis
// transfer: reduced costs are independent of the right-hand side, so a
// donor's optimal basis is exactly dual feasible for a sibling model
// differing only in the capacity RHS — the install must be counted with
// zero repair pivots, and the answer must equal the cold solve's.
func TestHotStartRHSOnlyTransfer(t *testing.T) {
	t.Setenv("CASA_INCREMENTAL", "on")
	opt := Options{DisablePresolve: true}
	donor, err := Solve(context.Background(), knapModel(14, 23), opt)
	if err != nil || donor.Status != Optimal {
		t.Fatalf("donor solve: %v %v", err, donor.Status)
	}
	if donor.HotStart == nil || donor.HotStart.Basis == nil {
		t.Fatal("donor solve exported no hot start")
	}

	recipient := knapModel(14, 16)
	cold, err := Solve(context.Background(), recipient, opt)
	if err != nil || cold.Status != Optimal {
		t.Fatalf("cold recipient solve: %v %v", err, cold.Status)
	}

	reuse := obs.GetCounter("casa_ilp_basis_reuse_total")
	repair := obs.GetCounter("casa_ilp_basis_repair_pivots_total")
	reuseBase, repairBase := reuse.Value(), repair.Value()
	hotOpt := opt
	hotOpt.HotStart = donor.HotStart
	hot, err := Solve(context.Background(), recipient, hotOpt)
	if err != nil || hot.Status != Optimal {
		t.Fatalf("hot recipient solve: %v %v", err, hot.Status)
	}
	if got := reuse.Value(); got != reuseBase+1 {
		t.Errorf("basis reuse counter = %d, want %d", got, reuseBase+1)
	}
	if got := repair.Value(); got != repairBase {
		t.Errorf("RHS-only transfer needed %d repair pivots, want 0", got-repairBase)
	}
	if hot.Objective != cold.Objective {
		t.Errorf("hot objective %v != cold %v", hot.Objective, cold.Objective)
	}
}

// TestHotStartCrossModelExactness transfers hot starts between random
// models that share only some variable names (and between entirely
// unrelated ones): whatever the donor, the recipient's answer must be
// bitwise identical to its cold solve. This is the no-wrong-answers
// property the planner relies on when neighboring cells' conflict
// graphs differ.
func TestHotStartCrossModelExactness(t *testing.T) {
	t.Setenv("CASA_INCREMENTAL", "on")
	rng := testRNG(0xC0FFEE)
	for trial := 0; trial < 60; trial++ {
		donorModel := randBinaryModel(&rng)
		recModel := randBinaryModel(&rng)
		donor, err := Solve(context.Background(), donorModel, Options{})
		if err != nil {
			t.Fatalf("trial %d donor: %v", trial, err)
		}
		if donor.HotStart == nil {
			continue // infeasible/unbounded donors export nothing
		}
		cold, err := Solve(context.Background(), recModel, Options{})
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		hot, err := Solve(context.Background(), recModel, Options{HotStart: donor.HotStart})
		if err != nil {
			t.Fatalf("trial %d hot: %v", trial, err)
		}
		if hot.Status != cold.Status || (cold.Status == Optimal && hot.Objective != cold.Objective) {
			t.Errorf("trial %d: hot (%v, %v) diverged from cold (%v, %v)",
				trial, hot.Status, hot.Objective, cold.Status, cold.Objective)
		}
	}
}

// TestGrownRHSRejectCounted pins the session patching rule: a capacity
// RHS smaller than the cached one patches, a GROWN one is rejected
// (counted) and solved via a fresh presolve — and both still give the
// same answers as sessionless solves.
func TestGrownRHSRejectCounted(t *testing.T) {
	t.Setenv("CASA_INCREMENTAL", "on")
	grown := obs.GetCounter("casa_ilp_rhs_grown_rejects_total")
	reused := obs.GetCounter("casa_presolve_reuse_total")
	s := NewSession()
	caps := []float64{20, 14, 27, 9}
	for i, c := range caps {
		m := knapModel(10, c)
		grownBase, reusedBase := grown.Value(), reused.Value()
		got, err := Solve(context.Background(), m, Options{Session: s})
		if err != nil || got.Status != Optimal {
			t.Fatalf("cap %v: %v %v", c, err, got.Status)
		}
		want, err := Solve(context.Background(), knapModel(10, c), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Objective != want.Objective {
			t.Errorf("cap %v: session objective %v != sessionless %v", c, got.Objective, want.Objective)
		}
		switch i {
		case 0: // first sight: fresh presolve, no counters
			if grown.Value() != grownBase || reused.Value() != reusedBase {
				t.Errorf("cap %v: counters moved on first sight", c)
			}
		case 1: // shrunk: patched reuse
			if reused.Value() != reusedBase+1 {
				t.Errorf("cap %v: shrunk RHS not reused (%d, want %d)", c, reused.Value(), reusedBase+1)
			}
			if grown.Value() != grownBase {
				t.Errorf("cap %v: shrunk RHS counted as grown", c)
			}
		case 2: // grown past the cached 14: explicit reject
			if grown.Value() != grownBase+1 {
				t.Errorf("cap %v: grown RHS not counted (%d, want %d)", c, grown.Value(), grownBase+1)
			}
			if reused.Value() != reusedBase {
				t.Errorf("cap %v: grown RHS reused a stale reduction", c)
			}
		case 3: // shrunk again, against the refreshed cap-27 entry
			if reused.Value() != reusedBase+1 {
				t.Errorf("cap %v: re-shrunk RHS not reused", c)
			}
		}
	}
}

// TestPseudocostEmptyTableIsMostFractional proves the degeneration
// claim in pcTable.score's contract: with no observations, the product
// rule ranks fractional variables exactly like the legacy
// most-fractional rule (distance to the nearest integer, first index on
// ties), so seeding nothing changes nothing.
func TestPseudocostEmptyTableIsMostFractional(t *testing.T) {
	rng := testRNG(31337)
	for trial := 0; trial < 200; trial++ {
		n := 2 + int(rng.next()%8)
		pc := newPCTable(n)
		fracs := make([]float64, n)
		for j := range fracs {
			fracs[j] = rng.fl(0.01, 0.99)
		}
		legacy, legacyWorst := -1, 0.0
		for j, f := range fracs {
			if d := math.Min(f, 1-f); d > legacyWorst {
				legacy, legacyWorst = j, d
			}
		}
		pcBest, pcScore := -1, 0.0
		for j, f := range fracs {
			if sc := pc.score(j, f); sc > pcScore {
				pcBest, pcScore = j, sc
			}
		}
		if legacy != pcBest {
			t.Fatalf("trial %d: empty-table pseudocost picked %d, most-fractional picked %d (fracs %v)",
				trial, pcBest, legacy, fracs)
		}
	}
}

// TestAnalyzeBasis sanity-checks the cmd/dump inspection entry point:
// partition counts must add up and the basic structural list must match
// the partition.
func TestAnalyzeBasis(t *testing.T) {
	m := knapModel(12, 17)
	info, err := AnalyzeBasis(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != Optimal {
		t.Fatalf("status %v", info.Status)
	}
	if info.Vars != 12 || info.Rows != 1 {
		t.Errorf("dims %dx%d, want 12x1", info.Vars, info.Rows)
	}
	if info.BasicStructural+info.BasicSlacks != info.Rows {
		t.Errorf("partition %d+%d != rows %d", info.BasicStructural, info.BasicSlacks, info.Rows)
	}
	if len(info.BasicVars) != info.BasicStructural {
		t.Errorf("BasicVars %d != BasicStructural %d", len(info.BasicVars), info.BasicStructural)
	}
}
