package ilp

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/fault"
)

// hardKnapsack builds a maximize knapsack whose LP relaxation is
// fractional almost everywhere, so branch & bound needs a real tree:
// value/weight ratios are close together and the capacity cuts the
// items mid-stream.
func hardKnapsack(n int) *Model {
	m := NewModel()
	obj := LinExpr{}
	capacity := LinExpr{}
	total := 0
	for i := 0; i < n; i++ {
		x := m.AddBinary("x" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		v := float64(100 + (i*37)%29)
		w := float64(100 + (i*53)%31)
		obj = obj.Add(v, x)
		capacity = capacity.Add(w, x)
		total += int(w)
	}
	m.SetObjective(obj, Maximize)
	m.AddConstraint("capacity", capacity, LE, float64(total)/2)
	return m
}

func TestSolveCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := Solve(ctx, hardKnapsack(16), Options{})
	if err != nil {
		t.Fatalf("anytime Solve must not error on cancellation, got %v", err)
	}
	if sol.Status != Aborted || !sol.Degraded || sol.DegradedReason != "canceled" {
		t.Fatalf("got status=%v degraded=%v reason=%q, want Aborted/degraded/canceled",
			sol.Status, sol.Degraded, sol.DegradedReason)
	}
}

func TestSolveExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	sol, err := Solve(ctx, hardKnapsack(16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Aborted || sol.DegradedReason != "deadline" {
		t.Fatalf("got status=%v reason=%q, want Aborted/deadline", sol.Status, sol.DegradedReason)
	}
}

func TestSolveBudgetReturnsIncumbentWithGap(t *testing.T) {
	// A generous budget lets the root dive seed an incumbent; stopping at
	// the node limit then reports it as a degraded Feasible with a gap.
	m := hardKnapsack(24)
	sol, err := Solve(context.Background(), m, Options{MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Feasible {
		t.Fatalf("status = %v, want Feasible (heuristic incumbent under node limit)", sol.Status)
	}
	if !sol.Degraded || sol.DegradedReason != "node-limit" {
		t.Fatalf("degraded=%v reason=%q, want degraded node-limit", sol.Degraded, sol.DegradedReason)
	}
	if sol.Gap < 0 {
		t.Fatalf("gap = %g, want >= 0", sol.Gap)
	}
	// The degraded objective must not beat the true optimum, and the true
	// optimum must be within the reported gap of it.
	full, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != Optimal {
		t.Fatalf("unlimited solve: %v", full.Status)
	}
	if sol.Objective > full.Objective+1e-6 {
		t.Fatalf("degraded objective %g beats optimum %g", sol.Objective, full.Objective)
	}
	slack := sol.Gap*math.Max(1, math.Abs(sol.Objective)) + 1e-6
	if full.Objective-sol.Objective > slack {
		t.Fatalf("optimum %g exceeds incumbent %g + gap slack %g", full.Objective, sol.Objective, slack)
	}
}

func TestSolveWallClockBudget(t *testing.T) {
	// A 1ns budget expires before the first node: the solve still
	// terminates, without error, and is labeled degraded.
	sol, err := Solve(context.Background(), hardKnapsack(20), Options{Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Degraded || sol.DegradedReason != "deadline" {
		t.Fatalf("degraded=%v reason=%q, want degraded deadline", sol.Degraded, sol.DegradedReason)
	}
}

func TestSolveLPCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveLP(ctx, hardKnapsack(8), Options{}); err != context.Canceled {
		t.Fatalf("SolveLP err = %v, want context.Canceled", err)
	}
}

func TestSolveBruteForceCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveBruteForce(ctx, hardKnapsack(8)); err != context.Canceled {
		t.Fatalf("SolveBruteForce err = %v, want context.Canceled", err)
	}
}

func TestSolveFaultSolverDeadline(t *testing.T) {
	fault.Set(fault.NewPlan().On(fault.SolverDeadline, 1))
	defer fault.Set(nil)
	sol, err := Solve(context.Background(), hardKnapsack(12), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Aborted || sol.DegradedReason != "fault:solver-deadline" {
		t.Fatalf("got status=%v reason=%q, want Aborted fault:solver-deadline", sol.Status, sol.DegradedReason)
	}
	// With the fault disarmed the same model solves to optimality.
	sol, err = Solve(context.Background(), hardKnapsack(12), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("post-fault status = %v, want Optimal", sol.Status)
	}
}
