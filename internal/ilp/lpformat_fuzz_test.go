package ilp

import (
	"strings"
	"testing"
)

// FuzzLPFormat fuzzes the LP reader/writer round trip: any input the
// parser accepts must render to text that parses again into a model of
// the same shape, and the render of the re-parsed model must be
// byte-identical to the first render (the format is canonical for
// parsed models). Parser rejections are fine — the property under test
// is that acceptance implies a stable round trip, never a crash.
func FuzzLPFormat(f *testing.F) {
	seeds := []string{
		"",
		"Minimize\n obj: 0\nSubject To\n c: x <= 1\nEnd\n",
		"Maximize\n obj: 3 x - 2 y + z + 0.25 w\n" +
			"Subject To\n c1: x + 2 y - 0.5 z <= 9\n c2: z + w >= -3\n c3: x + y = 2\n" +
			"Bounds\n -1 <= z <= 4\n w free\n" +
			"General\n y\nBinary\n x\nEnd\n",
		"Minimize\n obj: x\nSubject To\n c: x >= 2\nBounds\n x <= 10\nEnd\n",
		"minimize\nobj: 2x + 3y\nsubject to\nc1: x + y >= 1\nend",
		"Maximize\n obj: x\nSubject To\n c: 1e3 x <= 5\nBounds\n 0 <= x <= 1\nEnd\n",
		"Minimize\n obj: -x - y\nSubject To\n cap: 4 x + 9 y <= 12\nGeneral\n x\n y\nEnd\n",
		"Subject To\n c: x <= 1\n", // missing objective section
		"Minimize obj: x Subject To",
		"Minimize\n obj: 0.5 x\nSubject To\n c: x = 1e-9\nEnd\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return // keep the corpus on small, structurally interesting inputs
		}
		m, err := ParseLP(in)
		if err != nil {
			return // rejecting garbage is correct behavior
		}
		var first strings.Builder
		if err := WriteLP(&first, m); err != nil {
			t.Fatalf("WriteLP on accepted input: %v\ninput: %q", err, in)
		}
		m2, err := ParseLP(first.String())
		if err != nil {
			t.Fatalf("re-parse of rendered model: %v\nrendered: %q\ninput: %q",
				err, first.String(), in)
		}
		if m2.NumVars() != m.NumVars() || m2.NumConstraints() != m.NumConstraints() {
			t.Fatalf("shape changed: %d vars/%d cons -> %d vars/%d cons\ninput: %q",
				m.NumVars(), m.NumConstraints(), m2.NumVars(), m2.NumConstraints(), in)
		}
		var second strings.Builder
		if err := WriteLP(&second, m2); err != nil {
			t.Fatalf("second WriteLP: %v", err)
		}
		if first.String() != second.String() {
			t.Fatalf("render not canonical:\nfirst:  %q\nsecond: %q\ninput: %q",
				first.String(), second.String(), in)
		}
	})
}
