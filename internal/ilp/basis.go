package ilp

import "math"

// Warm-started bounded-variable revised dual simplex.
//
// The branch & bound loop changes nothing but variable bounds between
// node LPs. Dual feasibility of a basis does not depend on bounds at
// all, so one engine instance — basis, basis inverse and reduced costs —
// persists across the whole tree: after a bound change the previous
// optimal basis is still dual feasible and typically a handful of dual
// pivots away from the new optimum, even when best-bound search jumps to
// a distant part of the tree. This replaces the dense from-scratch
// two-phase tableau (simplex.go) that previously ran at every node; the
// dense path remains as SolveLP's engine and as the per-node fallback.
//
// Standard form: min cᵀx s.t. Ax + s = b, with one slack per row
// (LE: s ∈ [0,∞), GE: s ∈ (−∞,0], EQ: s ∈ [0,0]) and every structural
// column boxed on the side its reduced cost demands. Columns are stored
// sparse; the basis inverse is dense and updated in O(m²) per pivot with
// periodic refactorization.

// Nonbasic/basic column states.
const (
	nbLower int8 = iota // nonbasic at lower bound
	nbUpper             // nonbasic at upper bound
	inBasis
)

// spCol is a sparse constraint-matrix column.
type spCol struct {
	rows []int32
	vals []float64
}

const (
	// refactorEvery bounds basis-inverse drift from product-form updates.
	refactorEvery = 100
	// pivTol is the minimum |alpha| for a column to be an entering
	// candidate; smaller pivots are numerically meaningless.
	pivTol = 1e-7
	// dualTol is the reduced-cost feasibility tolerance.
	dualTol = 1e-7
)

// rsx is the persistent revised-simplex engine for one model.
type rsx struct {
	n, m int // structural columns, rows

	cols   []spCol   // n structural + m slack columns
	c      []float64 // minimization-space costs, len n+m
	b      []float64 // row right-hand sides
	lo, hi []float64 // len n+m; structural part overwritten per node

	basis  []int     // basic column per row
	status []int8    // per column
	binv   []float64 // dense m×m basis inverse, row-major
	xB     []float64 // basic variable values
	d      []float64 // reduced costs (0 for basic columns)

	// scratch
	alpha []float64 // pivot row in nonbasic columns
	w     []float64 // binv · entering column
	yv    []float64 // duals / rhs accumulator

	iters        int // lifetime pivot count
	sinceRefresh int
	tol          float64
}

// newRSX builds the engine for md, or returns nil when some column
// cannot be placed dual-feasibly at a finite bound (free variables, or an
// infinite bound on the side the objective pulls toward); such models
// take the dense path instead.
func newRSX(md *Model, tol float64) *rsx {
	if tol <= 0 {
		tol = defaultTol
	}
	n, m := md.NumVars(), len(md.cons)
	tot := n + m
	e := &rsx{
		n: n, m: m,
		cols: make([]spCol, tot),
		c:    make([]float64, tot),
		b:    make([]float64, m),
		lo:   make([]float64, tot),
		hi:   make([]float64, tot),

		basis:  make([]int, m),
		status: make([]int8, tot),
		binv:   make([]float64, m*m),
		xB:     make([]float64, m),
		d:      make([]float64, tot),

		alpha: make([]float64, tot),
		w:     make([]float64, m),
		yv:    make([]float64, m),
		tol:   tol,
	}
	sign := 1.0
	if md.sense == Maximize {
		sign = -1
	}
	for _, t := range md.obj.Terms {
		e.c[t.Var] += sign * t.Coef
	}
	copy(e.lo, md.lo)
	copy(e.hi, md.hi)

	// Assemble sparse columns row by row, merging duplicate variable
	// references within a row.
	tmp := make([]float64, n)
	var touched []int
	for i, con := range md.cons {
		e.b[i] = con.RHS - con.Expr.Const
		touched = touched[:0]
		for _, t := range con.Expr.Terms {
			if tmp[t.Var] == 0 {
				touched = append(touched, int(t.Var))
			}
			tmp[t.Var] += t.Coef
		}
		for _, j := range touched {
			if v := tmp[j]; v != 0 {
				e.cols[j].rows = append(e.cols[j].rows, int32(i))
				e.cols[j].vals = append(e.cols[j].vals, v)
			}
			tmp[j] = 0
		}
		s := n + i
		e.cols[s] = spCol{rows: []int32{int32(i)}, vals: []float64{1}}
		switch con.Rel {
		case LE:
			e.lo[s], e.hi[s] = 0, math.Inf(1)
		case GE:
			e.lo[s], e.hi[s] = math.Inf(-1), 0
		case EQ:
			e.lo[s], e.hi[s] = 0, 0
		}
	}
	if !e.reset() {
		return nil
	}
	return e
}

// reset installs the all-slack basis and places each structural column
// dual-feasibly: at its lower bound when the cost pulls down, upper when
// it pulls up. Reports false when a required bound is infinite.
func (e *rsx) reset() bool {
	for j := 0; j < e.n; j++ {
		switch {
		case e.c[j] > e.tol:
			if math.IsInf(e.lo[j], -1) {
				return false
			}
			e.status[j] = nbLower
		case e.c[j] < -e.tol:
			if math.IsInf(e.hi[j], 1) {
				return false
			}
			e.status[j] = nbUpper
		default:
			if !math.IsInf(e.lo[j], -1) {
				e.status[j] = nbLower
			} else if !math.IsInf(e.hi[j], 1) {
				e.status[j] = nbUpper
			} else {
				return false
			}
		}
	}
	for i := 0; i < e.m; i++ {
		e.basis[i] = e.n + i
		e.status[e.n+i] = inBasis
	}
	for i := range e.binv {
		e.binv[i] = 0
	}
	for i := 0; i < e.m; i++ {
		e.binv[i*e.m+i] = 1
	}
	copy(e.d, e.c) // slack basis: y = 0
	for i := 0; i < e.m; i++ {
		e.d[e.n+i] = 0
	}
	e.sinceRefresh = 0
	return true
}

// setBounds installs a node's structural bounds. Slack bounds are fixed
// by the row relations.
func (e *rsx) setBounds(lo, hi []float64) {
	copy(e.lo[:e.n], lo)
	copy(e.hi[:e.n], hi)
}

// nbValue returns the resting value of a nonbasic column.
func (e *rsx) nbValue(j int) float64 {
	if e.status[j] == nbUpper {
		return e.hi[j]
	}
	return e.lo[j]
}

// computeXB recomputes basic values from the current bounds and
// nonbasic placements: xB = B⁻¹(b − N·x_N).
func (e *rsx) computeXB() {
	r := e.yv
	copy(r, e.b)
	for j := 0; j < e.n+e.m; j++ {
		if e.status[j] == inBasis {
			continue
		}
		v := e.nbValue(j)
		if v == 0 {
			continue
		}
		col := &e.cols[j]
		for k, ri := range col.rows {
			r[ri] -= col.vals[k] * v
		}
	}
	for i := 0; i < e.m; i++ {
		row := e.binv[i*e.m : (i+1)*e.m]
		s := 0.0
		for k := 0; k < e.m; k++ {
			s += row[k] * r[k]
		}
		e.xB[i] = s
	}
}

// computeDuals recomputes y = c_B·B⁻¹ and all reduced costs from
// scratch (used after refactorization; pivots maintain d incrementally).
func (e *rsx) computeDuals() {
	y := e.yv
	for k := range y {
		y[k] = 0
	}
	for i := 0; i < e.m; i++ {
		cb := e.c[e.basis[i]]
		if cb == 0 {
			continue
		}
		row := e.binv[i*e.m : (i+1)*e.m]
		for k := 0; k < e.m; k++ {
			y[k] += cb * row[k]
		}
	}
	for j := 0; j < e.n+e.m; j++ {
		if e.status[j] == inBasis {
			e.d[j] = 0
			continue
		}
		col := &e.cols[j]
		s := e.c[j]
		for k, ri := range col.rows {
			s -= y[ri] * col.vals[k]
		}
		e.d[j] = s
	}
}

// refactor rebuilds the dense basis inverse by Gauss–Jordan elimination
// with partial pivoting. Reports false on a (numerically) singular basis.
func (e *rsx) refactor() bool {
	m := e.m
	a := make([]float64, m*m)
	for col := 0; col < m; col++ {
		cj := &e.cols[e.basis[col]]
		for k, ri := range cj.rows {
			a[int(ri)*m+col] = cj.vals[k]
		}
	}
	inv := e.binv
	for i := range inv {
		inv[i] = 0
	}
	for i := 0; i < m; i++ {
		inv[i*m+i] = 1
	}
	for col := 0; col < m; col++ {
		p, best := -1, 1e-10
		for r := col; r < m; r++ {
			if v := math.Abs(a[r*m+col]); v > best {
				p, best = r, v
			}
		}
		if p < 0 {
			return false
		}
		if p != col {
			ar, ac := a[p*m:(p+1)*m], a[col*m:(col+1)*m]
			for k := 0; k < m; k++ {
				ar[k], ac[k] = ac[k], ar[k]
			}
			ir, ic := inv[p*m:(p+1)*m], inv[col*m:(col+1)*m]
			for k := 0; k < m; k++ {
				ir[k], ic[k] = ic[k], ir[k]
			}
		}
		piv := 1 / a[col*m+col]
		ac, ic := a[col*m:(col+1)*m], inv[col*m:(col+1)*m]
		for k := col; k < m; k++ {
			ac[k] *= piv
		}
		for k := 0; k < m; k++ {
			ic[k] *= piv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := a[r*m+col]
			if f == 0 {
				continue
			}
			ar, ir := a[r*m:(r+1)*m], inv[r*m:(r+1)*m]
			for k := col; k < m; k++ {
				ar[k] -= f * ac[k]
			}
			for k := 0; k < m; k++ {
				ir[k] -= f * ic[k]
			}
		}
	}
	e.sinceRefresh = 0
	return true
}

// refresh refactorizes and recomputes duals and basic values; on a
// singular basis it falls back to a full reset. Reports false only when
// even the reset fails.
func (e *rsx) refresh() bool {
	if !e.refactor() {
		if !e.reset() {
			return false
		}
	} else {
		e.computeDuals()
	}
	e.computeXB()
	return true
}

// solve re-optimizes after a bound change: restore dual feasibility by
// bound-flipping any nonbasic column whose reduced cost now has the
// wrong sign (possible when a branch fixing is relaxed again on a jump
// to another part of the tree), recompute basic values, then run dual
// simplex until primal feasible.
func (e *rsx) solve(maxIter int) Status {
	for j := 0; j < e.n; j++ {
		if e.status[j] == inBasis || e.hi[j]-e.lo[j] < 1e-9 {
			continue
		}
		if e.status[j] == nbLower && e.d[j] < -dualTol {
			if math.IsInf(e.hi[j], 1) {
				if !e.reset() {
					return Aborted
				}
				break
			}
			e.status[j] = nbUpper
		} else if e.status[j] == nbUpper && e.d[j] > dualTol {
			if math.IsInf(e.lo[j], -1) {
				if !e.reset() {
					return Aborted
				}
				break
			}
			e.status[j] = nbLower
		}
	}
	e.computeXB()
	return e.reoptimize(maxIter)
}

// reoptimize runs the dual simplex loop: pick the most-violated basic
// variable, choose the entering column by the bounded dual ratio test,
// pivot. Ties switch to Bland's rule after enough iterations to rule
// out cycling; maxIter aborts to the dense fallback.
func (e *rsx) reoptimize(maxIter int) Status {
	m, tot := e.m, e.n+e.m
	blandAfter := 200 + 2*m
	for it := 0; ; it++ {
		if it > maxIter {
			return Aborted
		}
		bland := it > blandAfter

		// Leaving row: worst primal bound violation (Bland: first).
		r, sgn, worst := -1, 1.0, feasTol
		for i := 0; i < m; i++ {
			bj := e.basis[i]
			if v := e.lo[bj] - e.xB[i]; v > worst {
				worst, r, sgn = v, i, -1
			} else if v := e.xB[i] - e.hi[bj]; v > worst {
				worst, r, sgn = v, i, 1
			}
			if r == i && bland {
				break
			}
		}
		if r < 0 {
			return Optimal
		}

		// Pivot row in all nonbasic columns: alpha_j = (B⁻¹)_r · A_j.
		rho := e.binv[r*m : (r+1)*m]
		for j := 0; j < tot; j++ {
			if e.status[j] == inBasis {
				continue
			}
			col := &e.cols[j]
			s := 0.0
			for k, ri := range col.rows {
				s += rho[ri] * col.vals[k]
			}
			e.alpha[j] = s
		}

		// Dual ratio test. With at_j = sgn·alpha_j, a column is eligible
		// when moving it off its bound pushes the leaving variable back
		// toward feasibility: at-lower needs at > 0, at-upper needs
		// at < 0; the dual step is d_j/at_j ≥ 0 either way. Columns with
		// equal bounds cannot move and never enter.
		q, bestRatio, bestAbs := -1, math.Inf(1), 0.0
		for j := 0; j < tot; j++ {
			if e.status[j] == inBasis || e.hi[j]-e.lo[j] < 1e-9 {
				continue
			}
			at := sgn * e.alpha[j]
			if e.status[j] == nbLower {
				if at <= pivTol {
					continue
				}
			} else if at >= -pivTol {
				continue
			}
			ratio := e.d[j] / at
			if ratio < 0 {
				ratio = 0 // reduced-cost drift within tolerance
			}
			if bland {
				if ratio < bestRatio-1e-12 || (ratio <= bestRatio+1e-12 && (q < 0 || j < q)) {
					bestRatio, q = ratio, j
				}
				continue
			}
			if ratio < bestRatio-1e-9 {
				bestRatio, bestAbs, q = ratio, math.Abs(at), j
			} else if ratio <= bestRatio+1e-9 && math.Abs(at) > bestAbs {
				bestRatio, bestAbs, q = math.Min(bestRatio, ratio), math.Abs(at), j
			}
		}
		if q < 0 {
			// No column can repair the violated row: primal infeasible.
			return Infeasible
		}

		// w = B⁻¹·A_q; w[r] equals alpha_q by construction.
		col := &e.cols[q]
		for i := 0; i < m; i++ {
			row := e.binv[i*m:]
			s := 0.0
			for k, ri := range col.rows {
				s += row[ri] * col.vals[k]
			}
			e.w[i] = s
		}
		piv := e.w[r]
		if math.Abs(piv) < 1e-10 {
			// Numerically degenerate pivot: refresh and retry.
			if !e.refresh() {
				return Aborted
			}
			continue
		}

		lb := e.basis[r]
		bnd := e.lo[lb]
		if sgn > 0 {
			bnd = e.hi[lb]
		}
		step := (e.xB[r] - bnd) / piv
		for i := 0; i < m; i++ {
			if i != r {
				e.xB[i] -= step * e.w[i]
			}
		}
		e.xB[r] = e.nbValue(q) + step

		// Incremental dual update: y += θ·sgn·rho shifts every nonbasic
		// reduced cost by −θ·sgn·alpha_j; the entering column's hits 0.
		theta := e.d[q] / (sgn * piv)
		if theta < 0 {
			theta = 0
		}
		if theta != 0 {
			for j := 0; j < tot; j++ {
				if e.status[j] == inBasis || j == q {
					continue
				}
				if a := e.alpha[j]; a != 0 {
					e.d[j] -= theta * sgn * a
				}
			}
		}
		e.d[q] = 0
		e.d[lb] = -theta * sgn

		e.status[q] = inBasis
		if sgn < 0 {
			e.status[lb] = nbLower
		} else {
			e.status[lb] = nbUpper
		}
		e.basis[r] = q

		// Product-form update of the inverse.
		pr := e.binv[r*m : (r+1)*m]
		ipiv := 1 / piv
		for k := 0; k < m; k++ {
			pr[k] *= ipiv
		}
		for i := 0; i < m; i++ {
			if i == r {
				continue
			}
			f := e.w[i]
			if f == 0 {
				continue
			}
			row := e.binv[i*m : (i+1)*m]
			for k := 0; k < m; k++ {
				row[k] -= f * pr[k]
			}
		}

		e.iters++
		e.sinceRefresh++
		if e.sinceRefresh >= refactorEvery {
			if !e.refresh() {
				return Aborted
			}
		}
	}
}

// nodeEngine interface (solve.go): rsx is the legacy engine. It ignores
// objective limits — early termination exists only on the incremental
// path so that CASA_INCREMENTAL=off reproduces the historical pivot
// sequence exactly.
func (e *rsx) iterCount() int        { return e.iters }
func (e *rsx) dims() (n, m int)      { return e.n, e.m }
func (e *rsx) setObjLimit(_ float64) {}

// values returns the structural solution vector.
func (e *rsx) values() []float64 {
	x := make([]float64, e.n)
	for j := 0; j < e.n; j++ {
		if e.status[j] != inBasis {
			x[j] = e.nbValue(j)
		}
	}
	for i, bj := range e.basis {
		if bj < e.n {
			x[bj] = e.xB[i]
		}
	}
	return x
}
