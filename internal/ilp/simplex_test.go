package ilp

import (
	"context"
	"math"
	"testing"
)

// The tests in this file target the bounded-variable mechanics of the
// simplex: bound flips, basics leaving at their upper bound, fixed
// variables, and equivalence with explicit bound rows.

func TestLPNoConstraintsBoundOptimum(t *testing.T) {
	// With no rows at all, the optimum sits on variable bounds reached
	// purely by bound flips.
	m := NewModel()
	x := m.AddContinuous("x", 0, 5)
	y := m.AddContinuous("y", -2, 3)
	m.SetObjective(Expr(-1, x, 2, y), Minimize) // x→5, y→-2
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !almostEq(sol.Value(x), 5) || !almostEq(sol.Value(y), -2) {
		t.Errorf("x=%g y=%g, want 5,-2", sol.Value(x), sol.Value(y))
	}
	if !almostEq(sol.Objective, -9) {
		t.Errorf("obj=%g, want -9", sol.Objective)
	}
}

func TestLPBoundFlipThenPivot(t *testing.T) {
	// max x + 2y st x + y <= 3, x,y in [0,2] -> y=2 (flip), x=1 (pivot).
	m := NewModel()
	x := m.AddContinuous("x", 0, 2)
	y := m.AddContinuous("y", 0, 2)
	m.AddConstraint("c", Expr(1, x, 1, y), LE, 3)
	m.SetObjective(Expr(1, x, 2, y), Maximize)
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, 5) {
		t.Fatalf("got %v %g, want optimal 5", sol.Status, sol.Objective)
	}
	if !almostEq(sol.Value(x), 1) || !almostEq(sol.Value(y), 2) {
		t.Errorf("x=%g y=%g, want 1,2", sol.Value(x), sol.Value(y))
	}
}

func TestLPBasicLeavesAtUpperBound(t *testing.T) {
	// max 2x + y st x - y <= 1, x <= 4 (bound), y <= 2 (bound).
	// Entering x drives basic slack down AND y's row interaction: pick a
	// formulation where the basic variable y reaches its upper bound:
	//   y >= x - 1 forces y up as x grows.
	m := NewModel()
	x := m.AddContinuous("x", 0, 4)
	y := m.AddContinuous("y", 0, 2)
	m.AddConstraint("c", Expr(1, x, -1, y), LE, 1)
	m.SetObjective(Expr(2, x, 1, y), Maximize)
	// Optimum: y=2 (upper), x=3 (row binds), obj=8.
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, 8) {
		t.Fatalf("got %v %g, want optimal 8", sol.Status, sol.Objective)
	}
	if !almostEq(sol.Value(x), 3) || !almostEq(sol.Value(y), 2) {
		t.Errorf("x=%g y=%g, want 3,2", sol.Value(x), sol.Value(y))
	}
}

func TestLPFixedVariables(t *testing.T) {
	// A variable with lo == hi is pinned; the solver must neither move it
	// nor loop on it.
	m := NewModel()
	x := m.AddContinuous("x", 2, 2)
	y := m.AddContinuous("y", 0, 10)
	m.AddConstraint("c", Expr(1, x, 1, y), LE, 6)
	m.SetObjective(Expr(1, x, 1, y), Maximize)
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Optimal || !almostEq(sol.Value(x), 2) || !almostEq(sol.Value(y), 4) {
		t.Fatalf("got %v x=%g y=%g, want 2,4", sol.Status, sol.Value(x), sol.Value(y))
	}
}

func TestLPInfeasibleWithBounds(t *testing.T) {
	// Bounds make the row unsatisfiable.
	m := NewModel()
	x := m.AddContinuous("x", 0, 1)
	y := m.AddContinuous("y", 0, 1)
	m.AddConstraint("c", Expr(1, x, 1, y), GE, 3)
	m.SetObjective(Expr(1, x), Minimize)
	sol, err := SolveLP(context.Background(), m, Options{})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

// TestLPBoundsMatchExplicitRows cross-validates implicit bound handling
// against the same model with bounds written as constraint rows.
func TestLPBoundsMatchExplicitRows(t *testing.T) {
	rng := uint64(2024)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	fl := func(lo, hi float64) float64 {
		return lo + (hi-lo)*float64(next()%10000)/10000
	}
	for trial := 0; trial < 40; trial++ {
		n := 2 + int(next()%5)
		nc := 1 + int(next()%4)
		type varSpec struct{ lo, hi float64 }
		specs := make([]varSpec, n)
		for i := range specs {
			lo := fl(-5, 5)
			specs[i] = varSpec{lo: lo, hi: lo + fl(0.5, 8)}
		}
		coefs := make([][]float64, nc)
		rels := make([]Rel, nc)
		rhss := make([]float64, nc)
		for c := 0; c < nc; c++ {
			coefs[c] = make([]float64, n)
			for i := range coefs[c] {
				coefs[c][i] = fl(-3, 3)
			}
			rels[c] = []Rel{LE, GE}[next()%2]
			rhss[c] = fl(-10, 10)
		}
		objc := make([]float64, n)
		for i := range objc {
			objc[i] = fl(-4, 4)
		}

		// Model A: implicit bounds.
		ma := NewModel()
		va := make([]Var, n)
		for i, sp := range specs {
			va[i] = ma.AddContinuous("", sp.lo, sp.hi)
		}
		// Model B: bounds as rows, variables shifted to [lo, +inf).
		mb := NewModel()
		vb := make([]Var, n)
		for i, sp := range specs {
			vb[i] = mb.AddContinuous("", sp.lo, math.Inf(1))
			mb.AddConstraint("", Expr(1, vb[i]), LE, sp.hi)
		}
		for c := 0; c < nc; c++ {
			ea, eb := LinExpr{}, LinExpr{}
			for i := 0; i < n; i++ {
				ea = ea.Add(coefs[c][i], va[i])
				eb = eb.Add(coefs[c][i], vb[i])
			}
			ma.AddConstraint("", ea, rels[c], rhss[c])
			mb.AddConstraint("", eb, rels[c], rhss[c])
		}
		oa, ob := LinExpr{}, LinExpr{}
		for i := 0; i < n; i++ {
			oa = oa.Add(objc[i], va[i])
			ob = ob.Add(objc[i], vb[i])
		}
		sense := []Sense{Minimize, Maximize}[next()%2]
		ma.SetObjective(oa, sense)
		mb.SetObjective(ob, sense)

		sa, err := SolveLP(context.Background(), ma, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sb, err := SolveLP(context.Background(), mb, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sa.Status != sb.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, sa.Status, sb.Status)
		}
		if sa.Status == Optimal && math.Abs(sa.Objective-sb.Objective) > 1e-6 {
			t.Fatalf("trial %d: obj %g vs %g", trial, sa.Objective, sb.Objective)
		}
		// Implicit-bound solutions must respect their boxes.
		if sa.Status == Optimal {
			for i, sp := range specs {
				v := sa.Value(va[i])
				if v < sp.lo-1e-7 || v > sp.hi+1e-7 {
					t.Fatalf("trial %d: x%d=%g outside [%g,%g]", trial, i, v, sp.lo, sp.hi)
				}
			}
		}
	}
}

// TestMILPBoundedIntegersMatchEnumeration validates branch & bound over
// small integer boxes against exhaustive enumeration.
func TestMILPBoundedIntegersMatchEnumeration(t *testing.T) {
	rng := uint64(777)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	fl := func(lo, hi float64) float64 {
		return lo + (hi-lo)*float64(next()%10000)/10000
	}
	for trial := 0; trial < 25; trial++ {
		n := 2 + int(next()%3) // 2..4 integer vars
		los := make([]int, n)
		his := make([]int, n)
		for i := range los {
			los[i] = int(next()%3) - 1 // -1..1
			his[i] = los[i] + 1 + int(next()%3)
		}
		m := NewModel()
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = m.AddVar("", Integer, float64(los[i]), float64(his[i]))
		}
		nc := 1 + int(next()%3)
		type row struct {
			c   []float64
			rel Rel
			rhs float64
		}
		rows := make([]row, nc)
		for c := range rows {
			rows[c].c = make([]float64, n)
			for i := range rows[c].c {
				rows[c].c[i] = fl(-2, 3)
			}
			rows[c].rel = []Rel{LE, GE}[next()%2]
			rows[c].rhs = fl(-4, 6)
			e := LinExpr{}
			for i := 0; i < n; i++ {
				e = e.Add(rows[c].c[i], vars[i])
			}
			m.AddConstraint("", e, rows[c].rel, rows[c].rhs)
		}
		objc := make([]float64, n)
		obj := LinExpr{}
		for i := range objc {
			objc[i] = fl(-5, 5)
			obj = obj.Add(objc[i], vars[i])
		}
		m.SetObjective(obj, Minimize)

		got, err := Solve(context.Background(), m, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Exhaustive enumeration.
		best := math.Inf(1)
		var rec func(i int, x []float64)
		x := make([]float64, n)
		rec = func(i int, x []float64) {
			if i == n {
				for _, r := range rows {
					v := 0.0
					for k := 0; k < n; k++ {
						v += r.c[k] * x[k]
					}
					switch r.rel {
					case LE:
						if v > r.rhs+1e-9 {
							return
						}
					case GE:
						if v < r.rhs-1e-9 {
							return
						}
					}
				}
				v := 0.0
				for k := 0; k < n; k++ {
					v += objc[k] * x[k]
				}
				if v < best {
					best = v
				}
				return
			}
			for vi := los[i]; vi <= his[i]; vi++ {
				x[i] = float64(vi)
				rec(i+1, x)
			}
		}
		rec(0, x)

		if math.IsInf(best, 1) {
			if got.Status != Infeasible {
				t.Fatalf("trial %d: solver %v, enumeration infeasible", trial, got.Status)
			}
			continue
		}
		if got.Status != Optimal {
			t.Fatalf("trial %d: solver %v, enumeration found %g", trial, got.Status, best)
		}
		if math.Abs(got.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: solver %g, enumeration %g", trial, got.Objective, best)
		}
	}
}

func TestBranchPriorityAccessors(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	if m.BranchPriority(x) != 0 {
		t.Error("default priority should be 0")
	}
	m.SetBranchPriority(x, 3)
	if m.BranchPriority(x) != 3 {
		t.Error("priority not stored")
	}
}
