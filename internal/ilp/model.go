// Package ilp is a self-contained linear and 0/1 integer programming
// solver, the reproduction's stand-in for the commercial CPLEX solver the
// paper uses [5] (Go has no mature ILP library, so this substrate is built
// from scratch).
//
// It provides:
//
//   - a modeling layer (Model, Var, LinExpr, constraints, objective);
//   - a dense two-phase primal simplex for linear relaxations, with
//     Dantzig pricing and a Bland's-rule fallback for anti-cycling;
//   - branch & bound over integer/binary variables with LP-relaxation
//     bounds, most-fractional branching and incumbent pruning;
//   - a reader/writer for a practical subset of the CPLEX LP file format.
//
// The solver targets the problem sizes CASA produces (a few hundred to a
// few thousand variables) and is validated against exhaustive enumeration
// on small instances.
package ilp

import (
	"fmt"
	"math"
)

// Sense is the optimization direction.
type Sense int

const (
	// Minimize seeks the smallest objective value.
	Minimize Sense = iota
	// Maximize seeks the largest objective value.
	Maximize
)

// String returns the sense name.
func (s Sense) String() string {
	if s == Maximize {
		return "maximize"
	}
	return "minimize"
}

// VarKind classifies a decision variable.
type VarKind int

const (
	// Continuous variables take any value within their bounds.
	Continuous VarKind = iota
	// Binary variables take values in {0, 1}.
	Binary
	// Integer variables take integral values within their bounds.
	Integer
)

// String returns the kind name.
func (k VarKind) String() string {
	switch k {
	case Binary:
		return "binary"
	case Integer:
		return "integer"
	default:
		return "continuous"
	}
}

// Var identifies a variable within its model.
type Var int

// Term is one coefficient–variable product.
type Term struct {
	Var  Var
	Coef float64
}

// LinExpr is a linear expression: a constant plus a sum of terms. The zero
// value is the expression 0.
type LinExpr struct {
	Terms []Term
	Const float64
}

// Expr builds a linear expression from alternating coefficient, variable
// pairs: Expr(2, x, -1, y) == 2x - y.
func Expr(pairs ...any) LinExpr {
	if len(pairs)%2 != 0 {
		panic("ilp.Expr: need coefficient/variable pairs")
	}
	var e LinExpr
	for i := 0; i < len(pairs); i += 2 {
		c, ok := toFloat(pairs[i])
		if !ok {
			panic(fmt.Sprintf("ilp.Expr: pair %d: coefficient %T", i/2, pairs[i]))
		}
		v, ok := pairs[i+1].(Var)
		if !ok {
			panic(fmt.Sprintf("ilp.Expr: pair %d: variable %T", i/2, pairs[i+1]))
		}
		e.Terms = append(e.Terms, Term{Var: v, Coef: c})
	}
	return e
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	}
	return 0, false
}

// Add appends a term and returns the extended expression (builder style).
func (e LinExpr) Add(c float64, v Var) LinExpr {
	e.Terms = append(e.Terms, Term{Var: v, Coef: c})
	return e
}

// AddConst adds a constant offset.
func (e LinExpr) AddConst(c float64) LinExpr {
	e.Const += c
	return e
}

// Rel is a constraint relation.
type Rel int

const (
	// LE is ≤.
	LE Rel = iota
	// GE is ≥.
	GE
	// EQ is =.
	EQ
)

// String returns the relation symbol.
func (r Rel) String() string {
	switch r {
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "<="
	}
}

// Constraint is a linear constraint Expr Rel RHS. Expr.Const is folded
// into the RHS at solve time.
type Constraint struct {
	Name string
	Expr LinExpr
	Rel  Rel
	RHS  float64
}

// Model is a mixed 0/1-integer linear program under construction.
type Model struct {
	names []string
	kinds []VarKind
	lo    []float64
	hi    []float64
	prio  []int

	cons []Constraint

	obj      LinExpr
	sense    Sense
	hasObj   bool
	objConst float64
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.names) }

// NumConstraints returns the number of constraints.
func (m *Model) NumConstraints() int { return len(m.cons) }

// AddVar adds a variable with the given bounds. Use math.Inf for free
// bounds. Binary variables may pass any bounds; they are clamped to [0,1].
func (m *Model) AddVar(name string, kind VarKind, lo, hi float64) Var {
	if name == "" {
		name = fmt.Sprintf("x%d", len(m.names))
	}
	if kind == Binary {
		lo, hi = math.Max(lo, 0), math.Min(hi, 1)
	}
	m.names = append(m.names, name)
	m.kinds = append(m.kinds, kind)
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.prio = append(m.prio, 0)
	return Var(len(m.names) - 1)
}

// SetBranchPriority assigns a branch & bound priority to an integer
// variable: among fractional variables, the solver always branches within
// the highest priority class present (default 0). Use it to steer
// branching toward genuine decision variables instead of derived ones
// (e.g. linearization products, which are implied once the decisions are
// fixed).
func (m *Model) SetBranchPriority(v Var, p int) { m.prio[v] = p }

// BranchPriority returns the variable's branch priority.
func (m *Model) BranchPriority(v Var) int { return m.prio[v] }

// AddBinary adds a {0,1} variable.
func (m *Model) AddBinary(name string) Var { return m.AddVar(name, Binary, 0, 1) }

// AddContinuous adds a continuous variable with the given bounds.
func (m *Model) AddContinuous(name string, lo, hi float64) Var {
	return m.AddVar(name, Continuous, lo, hi)
}

// VarName returns the variable's name.
func (m *Model) VarName(v Var) string { return m.names[v] }

// VarKindOf returns the variable's kind.
func (m *Model) VarKindOf(v Var) VarKind { return m.kinds[v] }

// Bounds returns the variable's bounds.
func (m *Model) Bounds(v Var) (lo, hi float64) { return m.lo[v], m.hi[v] }

// SetBounds replaces the variable's bounds.
func (m *Model) SetBounds(v Var, lo, hi float64) {
	m.lo[v], m.hi[v] = lo, hi
}

// AddConstraint appends expr rel rhs. The name may be empty.
func (m *Model) AddConstraint(name string, expr LinExpr, rel Rel, rhs float64) {
	if name == "" {
		name = fmt.Sprintf("c%d", len(m.cons))
	}
	m.cons = append(m.cons, Constraint{Name: name, Expr: expr, Rel: rel, RHS: rhs})
}

// Constraints returns the constraint slice (not a copy; do not mutate).
func (m *Model) Constraints() []Constraint { return m.cons }

// SetObjective installs the objective expression and direction.
func (m *Model) SetObjective(expr LinExpr, sense Sense) {
	m.obj = expr
	m.sense = sense
	m.hasObj = true
	m.objConst = expr.Const
}

// Objective returns the objective expression and sense.
func (m *Model) Objective() (LinExpr, Sense) { return m.obj, m.sense }

// Validate reports structural problems: variables out of range, inverted
// bounds, NaN coefficients, or a missing objective.
func (m *Model) Validate() error {
	if !m.hasObj {
		return fmt.Errorf("ilp: model has no objective")
	}
	if len(m.names) == 0 {
		return fmt.Errorf("ilp: model has no variables")
	}
	for i := range m.names {
		if m.lo[i] > m.hi[i] {
			return fmt.Errorf("ilp: variable %s has inverted bounds [%g,%g]",
				m.names[i], m.lo[i], m.hi[i])
		}
		if math.IsInf(m.lo[i], 1) || math.IsInf(m.hi[i], -1) {
			return fmt.Errorf("ilp: variable %s has impossible bounds", m.names[i])
		}
	}
	check := func(e LinExpr, where string) error {
		for _, t := range e.Terms {
			if int(t.Var) < 0 || int(t.Var) >= len(m.names) {
				return fmt.Errorf("ilp: %s references unknown variable %d", where, t.Var)
			}
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return fmt.Errorf("ilp: %s has non-finite coefficient on %s",
					where, m.names[t.Var])
			}
		}
		return nil
	}
	if err := check(m.obj, "objective"); err != nil {
		return err
	}
	for _, c := range m.cons {
		if err := check(c.Expr, "constraint "+c.Name); err != nil {
			return err
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("ilp: constraint %s has non-finite RHS", c.Name)
		}
	}
	return nil
}

// integerVars lists the indices of Binary and Integer variables.
func (m *Model) integerVars() []int {
	var ids []int
	for i, k := range m.kinds {
		if k == Binary || k == Integer {
			ids = append(ids, i)
		}
	}
	return ids
}

// Eval computes the value of expr under the assignment x.
func Eval(expr LinExpr, x []float64) float64 {
	v := expr.Const
	for _, t := range expr.Terms {
		v += t.Coef * x[t.Var]
	}
	return v
}
