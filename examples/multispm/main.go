// Multi-scratchpad extension (paper §4): "if we had more than one
// scratchpad at the same horizontal level in the memory hierarchy, then we
// only need to repeat inequation (17) for every scratchpad," plus a
// constraint assigning each object to at most one of them.
//
// This example splits the g721 benchmark's scratchpad budget across two
// scratchpads of different sizes (a small, very cheap one and a larger
// one) and compares the optimal assignment against a single scratchpad of
// the combined capacity.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		cacheSize = 1024
		smallSPM  = 128
		largeSPM  = 256
	)
	// Prepare with the combined budget so trace formation allows traces up
	// to the largest scratchpad.
	p, err := repro.Prepare(context.Background(), "g721", repro.DM(cacheSize), largeSPM)
	if err != nil {
		log.Fatal(err)
	}

	// Energies per access for each array come from the same analytical
	// model the pipeline used; smaller arrays are cheaper.
	costSmall := repro.SPMAccessEnergy(smallSPM)
	costLarge := repro.SPMAccessEnergy(largeSPM)

	multi, err := repro.AllocateMulti(p.Set, p.Graph, repro.MultiParams{
		SPMs: []repro.SPMSpec{
			{Size: smallSPM, ESPHit: costSmall},
			{Size: largeSPM, ESPHit: costLarge},
		},
		ECacheHit:  p.Cost.CacheHit,
		ECacheMiss: p.Cost.CacheMiss,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("g721 with a %dB cache and two scratchpads (%dB @ %.3f nJ, %dB @ %.3f nJ)\n",
		cacheSize, smallSPM, costSmall, largeSPM, costLarge)
	fmt.Printf("predicted energy: %.2f µJ (solver: %v, %d nodes)\n",
		multi.PredictedEnergy/1000, multi.Status, multi.Nodes)
	for s, used := range multi.UsedBytes {
		fmt.Printf("  scratchpad %d: %d bytes used\n", s, used)
	}
	placed := 0
	for _, a := range multi.Assign {
		if a >= 0 {
			placed++
		}
	}
	fmt.Printf("  %d of %d traces placed\n", placed, len(multi.Assign))

	// Reference: one scratchpad of the combined size.
	single, err := repro.Allocate(context.Background(), p.Set, p.Graph, repro.CASAParams{
		SPMSize:    smallSPM + largeSPM,
		ESPHit:     repro.SPMAccessEnergy(512), // combined array: next power of two
		ECacheHit:  p.Cost.CacheHit,
		ECacheMiss: p.Cost.CacheMiss,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single %dB scratchpad for comparison: %.2f µJ predicted\n",
		smallSPM+largeSPM, single.PredictedEnergy/1000)
	fmt.Println("\nsplit arrays cost less per access; the ILP weighs that against placement freedom")
}
