// Mediabench sweep: the paper's Table 1 scenario end to end. For each
// bundled benchmark (adpcm, g721, mpeg) and each scratchpad / loop-cache
// size, compare three techniques on identical traces:
//
//   - CASA (this paper): conflict-aware ILP, copy semantics;
//   - Steinke et al. [13]: cache-unaware knapsack, move semantics;
//   - Ross/Gordon-Ross & Vahid [12]: greedy preloaded loop cache.
//
// The winners and the crossovers — not the absolute µJ — are the point:
// CASA wins on average everywhere, and the loop cache falls behind once
// its 4-entry preload limit binds.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	configs := []struct {
		workload string
		cache    int
		sizes    []int
	}{
		{"adpcm", 128, []int{64, 128, 256}},
		{"g721", 1024, []int{128, 256, 512, 1024}},
		{"mpeg", 2048, []int{128, 256, 512, 1024}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tmem(B)\tCASA(µJ)\tSteinke(µJ)\tloop cache(µJ)\tvs Steinke\tvs LC")
	for _, cfg := range configs {
		for _, size := range cfg.sizes {
			p, err := repro.Prepare(context.Background(), cfg.workload, repro.DM(cfg.cache), size)
			if err != nil {
				log.Fatal(err)
			}
			casa, err := p.RunCASA(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			st, err := p.RunSteinke(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			lc, err := p.RunLoopCache(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%+.1f%%\t%+.1f%%\n",
				cfg.workload, size,
				casa.EnergyMicroJ, st.EnergyMicroJ, lc.EnergyMicroJ,
				100*(st.EnergyMicroJ-casa.EnergyMicroJ)/st.EnergyMicroJ,
				100*(lc.EnergyMicroJ-casa.EnergyMicroJ)/lc.EnergyMicroJ)
		}
	}
	w.Flush()
}
