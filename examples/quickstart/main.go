// Quickstart: allocate the adpcm benchmark's hot traces onto a 128-byte
// scratchpad next to a 128-byte direct-mapped I-cache — the paper's
// smallest configuration — and compare the energy against running from the
// cache alone.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// Prepare bundles the whole front end: load the workload, profile it,
	// form traces sized for the scratchpad, and run the conflict-tracking
	// cache simulation that yields the conflict graph.
	pipeline, err := repro.Prepare(context.Background(), "adpcm", repro.DM(128), 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adpcm: %d bytes of code in %d traces; conflict graph has %d edges\n",
		pipeline.Prog.Size(), len(pipeline.Set.Traces), pipeline.Graph.NumEdges())

	// The baseline: everything runs through the I-cache.
	base, err := pipeline.RunCacheOnly(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// CASA: solve the paper's ILP and copy the selected traces to the
	// scratchpad.
	casa, err := pipeline.RunCASA(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cache only:      %8.2f µJ (%d misses)\n",
		base.EnergyMicroJ, base.Result.CacheMisses)
	fmt.Printf("CASA scratchpad: %8.2f µJ (%d misses, %d traces / %d bytes placed)\n",
		casa.EnergyMicroJ, casa.Result.CacheMisses, casa.PlacedTraces, casa.UsedBytes)
	fmt.Printf("saving:          %8.1f %%\n",
		100*(base.EnergyMicroJ-casa.EnergyMicroJ)/base.EnergyMicroJ)
}
