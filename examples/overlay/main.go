// Overlay: the paper's §7 future work — "dynamic copying (overlay) of
// memory objects on the scratchpad" — implemented and compared against
// static allocation, entirely through the public API.
//
// The workload is a batch program with two sequential passes (transform,
// then encode), each with a scratchpad-sized pair of hot kernels. A
// static allocation must split the scratchpad between the passes; the
// overlay allocator discovers the phases from the program structure,
// gives each pass the full capacity, and pays the modelled reload cost at
// each phase boundary.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

const (
	cacheSize = 256
	spmSize   = 192
)

func main() {
	prog, err := repro.TwoPassWorkload()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d bytes of code, %dB cache, %dB scratchpad\n",
		prog.Name, prog.Size(), cacheSize, spmSize)

	pipe, err := repro.PrepareProgram(context.Background(), prog, repro.DM(cacheSize), spmSize)
	if err != nil {
		log.Fatal(err)
	}

	// Static CASA: one selection for the whole run.
	static, err := pipe.RunCASA(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// Overlay: discover phases, allocate per phase with copy costs.
	phases, err := repro.DiscoverPhases(prog, pipe.Set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d phases:\n", phases.NumPhases())
	for _, ph := range phases.List {
		fmt.Printf("  phase %d: %-16s (entry blocks %v)\n", ph.ID, ph.Name, ph.EntryBlocks)
	}

	alloc, err := repro.AllocateOverlay(pipe.Set, pipe.Graph, phases, repro.OverlayParams{
		SPMSize:       spmSize,
		ESPHit:        pipe.Cost.SPMAccess,
		ECacheHit:     pipe.Cost.CacheHit,
		ECacheMiss:    pipe.Cost.CacheMiss,
		CopySetupNJ:   25,
		CopyPerWordNJ: repro.MainMemoryWordEnergy() + pipe.Cost.SPMAccess,
	})
	if err != nil {
		log.Fatal(err)
	}
	lay, err := repro.NewOverlayLayout(pipe.Set, alloc, phases, repro.LayoutOptions{
		Mode: repro.CopyPlacement, SPMSize: spmSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.SimulateLayout(prog, lay, repro.DM(cacheSize), spmSize)
	if err != nil {
		log.Fatal(err)
	}
	overlayMicroJ := res.TotalEnergyMicroJ() + alloc.CopyEnergyNJ/1000

	fmt.Printf("\nstatic CASA:  %8.2f µJ (%d misses)\n",
		static.EnergyMicroJ, static.Result.CacheMisses)
	fmt.Printf("overlay:      %8.2f µJ (%d misses, %.2f µJ of reload copies)\n",
		overlayMicroJ, res.CacheMisses, alloc.CopyEnergyNJ/1000)
	fmt.Printf("gain:         %8.1f %%\n",
		100*(static.EnergyMicroJ-overlayMicroJ)/static.EnergyMicroJ)

	fmt.Println("\nper-phase images:")
	for p, used := range alloc.UsedBytes {
		fmt.Printf("  phase %d (%s): %d/%d bytes\n", p, phases.List[p].Name, used, spmSize)
	}
}
