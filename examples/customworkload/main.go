// Custom workload: build your own program with the IR builder DSL, run it
// through the full CASA pipeline, and inspect the allocation.
//
// The program is a small DSP filter bank engineered to show exactly the
// failure mode of cache-unaware allocation (paper §2): two FIR kernels are
// laid out one cache-size apart, so they map onto the same direct-mapped
// sets and evict each other every frame, while a gain stage with the
// highest raw fetch count of all kernels lives in sets nobody else
// touches and therefore never misses after warmup.
//
//   - Steinke's knapsack ranks by fetch count and spends the scratchpad on
//     the gain stage, which was already perfectly served by the cache;
//   - CASA sees the conflict edges between the two kernels and moves one
//     of them, eliminating the thrashing.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

const (
	cacheBytes = 512
	spmBytes   = 96
)

func buildFilterBank() *repro.Program {
	pb := repro.NewProgramBuilder("filterbank")

	// Function (and therefore trace) order fixes the memory layout:
	// main | scale_output | fir_lowpass | coeff_tables | fir_highpass ...
	// coeff_tables is cold padding sized so that fir_highpass lands
	// exactly one cache size after fir_lowpass.
	main := pb.Func("main")
	main.Block("entry").Code(2)
	// Process 500 frames; each frame runs both filters, the gain stage and
	// an update.
	main.Block("frame").Code(1).Call("fir_lowpass")
	main.Block("hp").Code(1).Call("fir_highpass")
	main.Block("gain").Code(1).Call("scale_output")
	main.Block("upd").Code(1).Call("adapt_coeffs")
	main.Block("latch").Code(1).Branch("frame", "done", repro.Loop{Trips: 500})
	main.Block("done").Code(2)
	main.Block("exit").Return()

	// The gain stage: highest dynamic fetch count in the program, tiny
	// footprint, and (by construction) conflict-free.
	sc := pb.Func("scale_output")
	sc.Block("entry").Code(2)
	sc.Block("mul").Code(13).Branch("mul", "out", repro.Loop{Trips: 25})
	sc.Block("out").Code(1)
	sc.Block("exit").Return()

	lp := pb.Func("fir_lowpass")
	lp.Block("entry").Code(3)
	lp.Block("taps").Code(17).Branch("taps", "out", repro.Loop{Trips: 8})
	lp.Block("out").Code(1)
	lp.Block("exit").Return()

	// Cold coefficient tables / setup code: 104 instructions = 416 bytes,
	// which puts fir_highpass exactly 512 bytes after fir_lowpass.
	ct := pb.Func("coeff_tables")
	ct.Block("entry").Code(103)
	ct.Block("exit").Return()

	hp := pb.Func("fir_highpass")
	hp.Block("entry").Code(3)
	hp.Block("taps").Code(17).Branch("taps", "out", repro.Loop{Trips: 8})
	hp.Block("out").Code(1)
	hp.Block("exit").Return()

	ad := pb.Func("adapt_coeffs")
	ad.Block("entry").Code(2)
	// Adapt only every fourth frame.
	ad.Block("gate").Code(2).Branch("adapt", "skip", repro.Pattern{Seq: []bool{false, false, false, true}})
	ad.Block("adapt").Code(5)
	ad.Block("skip").Code(1)
	ad.Block("exit").Return()

	p, err := pb.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	prog := buildFilterBank()
	if err := repro.ValidateProgram(prog); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d bytes of code, %dB direct-mapped cache, %dB scratchpad\n",
		prog.Name, prog.Size(), cacheBytes, spmBytes)

	pipeline, err := repro.PrepareProgram(context.Background(), prog, repro.DM(cacheBytes), spmBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traces: %d, conflict edges: %d, conflict misses in profiling run: %d\n",
		len(pipeline.Set.Traces), pipeline.Graph.NumEdges(),
		pipeline.Baseline.ConflictMisses)

	base, err := pipeline.RunCacheOnly(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	steinke, err := pipeline.RunSteinke(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	casa, err := pipeline.RunCASA(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncache only: %8.2f µJ (%6d misses)\n", base.EnergyMicroJ, base.Result.CacheMisses)
	fmt.Printf("Steinke:    %8.2f µJ (%6d misses)\n", steinke.EnergyMicroJ, steinke.Result.CacheMisses)
	fmt.Printf("CASA:       %8.2f µJ (%6d misses)\n", casa.EnergyMicroJ, casa.Result.CacheMisses)

	fmt.Println("\nplacement (hot traces)           Steinke   CASA")
	for _, tr := range pipeline.Set.Traces {
		if tr.Fetches == 0 {
			continue
		}
		fn := prog.Func(tr.Blocks[0].Func).Name
		fmt.Printf("  %-14s %4dB f=%-8d %-9s %s\n", fn, tr.RawBytes, tr.Fetches,
			place(steinke, tr.ID), place(casa, tr.ID))
	}
}

func place(o *repro.Outcome, id int) string {
	if o.Result.PerMO[id].SPM > 0 {
		return "SPM"
	}
	return "cache"
}
